"""Trace file formats.

Two interchangeable formats:

- ``jsonl`` — one JSON object per record; human-inspectable, used in
  examples and debugging.
- ``bin`` — a fixed-width packed binary format (struct-based), roughly 6x
  smaller and faster; used when traces are archived between runs.

The format is chosen by file extension (``.jsonl`` / ``.trc``).

**Integrity framing.**  Archived traces feed thousands of simulations,
so a truncated or bit-flipped file must never be silently consumed as a
shorter/different workload.  Binary traces are written as ``SPT2``:
the record region is followed by a footer carrying the record count and
a CRC-32 of everything after the magic.  JSONL headers carry the record
count and a CRC-32 of the record lines.  On read:

- any malformed byte raises :class:`~repro.common.errors.TraceError`
  naming the file and the byte offset (binary) or line number (jsonl) —
  raw ``struct.error`` / ``EOFError`` / ``json.JSONDecodeError`` never
  escape;
- a missing footer or a count/CRC mismatch is reported as truncation or
  corruption, again with the offset where parsing stopped;
- ``skip_corrupt=True`` degrades gracefully instead: readable records
  are kept, damaged ones are dropped *and counted*, and the drop tally
  is logged and exposed via :func:`last_read_report`.

**Backward compatibility.**  Files written by the previous release
(``SPT1`` magic, no footer; jsonl headers without ``crc``) still load:
they get the same typed errors on structural damage, but no checksum
verification — the framing did not exist when they were written.  New
files are always written with framing.  Writes go to a temporary file
renamed into place, so an interrupted write leaves no torn trace behind.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.common import faults
from repro.common.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.trace.record import NO_ADDR, NO_REG, TraceRecord
from repro.trace.stream import Trace

logger = logging.getLogger(__name__)

#: Legacy (unframed) and current (framed) binary magics.
_MAGIC_V1 = b"SPT1"
_MAGIC_V2 = b"SPT2"
#: Footer magic: count + CRC-32 trailer of an SPT2 file.
_FOOTER_MAGIC = b"SPTE"

# pc, op, dest, ea, size, flags(taken|priv), target, nsrcs  -> then srcs
_RECORD_HEAD = struct.Struct("<qBbqBBqB")
_SRC_FMT = struct.Struct("<b")
_HEADER_FMT = struct.Struct("<IHB")
_FOOTER_FMT = struct.Struct("<II")


@dataclass
class TraceReadReport:
    """What the last :func:`read_trace` call saw (observability).

    ``dropped`` is only ever non-zero in ``skip_corrupt`` mode; the
    default mode raises instead of dropping.
    """

    path: str = ""
    records: int = 0
    dropped: int = 0
    #: Human-readable descriptions of tolerated damage.
    defects: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.defects


_last_report = TraceReadReport()


def last_read_report() -> TraceReadReport:
    """Report describing the most recent :func:`read_trace` call."""
    return _last_report


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in the format implied by its suffix.

    The bytes go to a temporary file in the same directory which is
    atomically renamed into place, so a crash mid-write can never leave
    a half-written trace under the final name.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        writer, mode = _write_jsonl, "w"
    elif path.suffix == ".trc":
        writer, mode = _write_binary, "wb"
    else:
        raise TraceError(f"unknown trace format for {path.name!r} (use .jsonl or .trc)")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        encoding = "utf-8" if mode == "w" else None
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            writer(trace, handle)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Testing hook: deliberately truncate/bit-flip the finished file to
    # model damage in transit or at rest (no-op unless faults installed).
    faults.corrupt_trace_file(path)


def read_trace(path: Union[str, Path], skip_corrupt: bool = False) -> Trace:
    """Read a trace previously written by :func:`write_trace`.

    With ``skip_corrupt=False`` (default) any structural damage raises
    :class:`TraceError` with the file and offset; with ``True``,
    readable records are kept and damage is counted and logged (see
    :func:`last_read_report`).
    """
    global _last_report
    path = Path(path)
    _last_report = TraceReadReport(path=str(path))
    if path.suffix == ".jsonl":
        return _read_jsonl(path, skip_corrupt, _last_report)
    if path.suffix == ".trc":
        return _read_binary(path, skip_corrupt, _last_report)
    raise TraceError(f"unknown trace format for {path.name!r} (use .jsonl or .trc)")


def _tolerate(
    skip_corrupt: bool, report: TraceReadReport, message: str
) -> None:
    """Record tolerated damage, or raise if not in skip mode."""
    if not skip_corrupt:
        raise TraceError(message)
    report.defects.append(message)
    logger.warning("skip_corrupt: %s", message)


# ----------------------------------------------------------------------
# jsonl
# ----------------------------------------------------------------------


def _record_to_dict(record: TraceRecord) -> dict:
    out = {"pc": record.pc, "op": record.op.name}
    if record.dest != NO_REG:
        out["dest"] = record.dest
    if record.srcs:
        out["srcs"] = list(record.srcs)
    if record.ea != NO_ADDR:
        out["ea"] = record.ea
    if record.size:
        out["size"] = record.size
    if record.is_branch:
        out["taken"] = record.taken
        if record.target != NO_ADDR:
            out["target"] = record.target
    if record.privileged:
        out["priv"] = True
    return out


def _record_from_dict(data: dict) -> TraceRecord:
    try:
        op = OpClass[data["op"]]
        return TraceRecord(
            pc=data["pc"],
            op=op,
            dest=data.get("dest", NO_REG),
            srcs=tuple(data.get("srcs", ())),
            ea=data.get("ea", NO_ADDR),
            size=data.get("size", 0),
            taken=data.get("taken", False),
            target=data.get("target", NO_ADDR),
            privileged=data.get("priv", False),
        )
    except (KeyError, TypeError) as exc:
        raise TraceError(f"malformed trace record: {data!r}") from exc


def _write_jsonl(trace: Trace, handle) -> None:
    lines = [json.dumps(_record_to_dict(record)) for record in trace.records]
    crc = zlib.crc32("\n".join(lines).encode("utf-8"))
    header = {
        "name": trace.name,
        "cpu": trace.cpu,
        "count": len(trace),
        "crc": crc,
    }
    handle.write(json.dumps({"header": header}) + "\n")
    for line in lines:
        handle.write(line + "\n")


def _read_jsonl(path: Path, skip_corrupt: bool, report: TraceReadReport) -> Trace:
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise TraceError(f"empty trace file: {path}")
        try:
            header_line = json.loads(first)
        except ValueError as exc:
            raise TraceError(f"{path}: line 1: unparseable header ({exc})") from exc
        if not isinstance(header_line, dict) or "header" not in header_line:
            raise TraceError(f"missing header line in {path}")
        header = header_line["header"]
        trace = Trace(name=header.get("name", path.stem), cpu=header.get("cpu", 0))
        body_lines: List[str] = []
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = _record_from_dict(data)
            except (ValueError, TraceError) as exc:
                _tolerate(
                    skip_corrupt,
                    report,
                    f"{path}: line {line_no}: malformed record ({exc})",
                )
                report.dropped += 1
                continue
            body_lines.append(line)
            trace.append(record)
    expected = header.get("count")
    if expected is not None and len(trace) + report.dropped != expected:
        _tolerate(
            skip_corrupt,
            report,
            f"{path}: truncated: header promises {expected} records, "
            f"found {len(trace) + report.dropped}",
        )
        report.dropped += expected - len(trace) - report.dropped
    # CRC only covers exactly the lines the writer emitted; verifying a
    # file we already dropped lines from would double-report the damage.
    expected_crc = header.get("crc")
    if expected_crc is not None and not report.defects:
        actual_crc = zlib.crc32("\n".join(body_lines).encode("utf-8"))
        if actual_crc != expected_crc:
            _tolerate(
                skip_corrupt,
                report,
                f"{path}: checksum mismatch (expected {expected_crc:#010x}, "
                f"got {actual_crc:#010x}): file corrupted",
            )
    report.records = len(trace)
    return trace


# ----------------------------------------------------------------------
# binary
# ----------------------------------------------------------------------


def _write_binary(trace: Trace, handle) -> None:
    name_bytes = trace.name.encode("utf-8")
    body = bytearray()
    body += _HEADER_FMT.pack(len(trace), len(name_bytes), trace.cpu)
    body += name_bytes
    for record in trace.records:
        flags = (1 if record.taken else 0) | (2 if record.privileged else 0)
        body += _RECORD_HEAD.pack(
            record.pc,
            int(record.op),
            record.dest,
            record.ea,
            record.size,
            flags,
            record.target,
            len(record.srcs),
        )
        for src in record.srcs:
            body += _SRC_FMT.pack(src)
    handle.write(_MAGIC_V2)
    handle.write(body)
    handle.write(_FOOTER_MAGIC)
    handle.write(_FOOTER_FMT.pack(len(trace), zlib.crc32(bytes(body))))


def _read_binary(path: Path, skip_corrupt: bool, report: TraceReadReport) -> Trace:
    data = path.read_bytes()
    magic = data[:4]
    if magic == _MAGIC_V1:
        framed = False
    elif magic == _MAGIC_V2:
        framed = True
    else:
        raise TraceError(f"not a binary trace file: {path}")

    body_end = len(data)
    footer_count: Optional[int] = None
    if framed:
        footer_size = len(_FOOTER_MAGIC) + _FOOTER_FMT.size
        if (
            len(data) < 4 + _HEADER_FMT.size + footer_size
            or data[-footer_size : -_FOOTER_FMT.size] != _FOOTER_MAGIC
        ):
            _tolerate(
                skip_corrupt,
                report,
                f"{path}: truncated binary trace: footer missing "
                f"(file ends at byte {len(data)})",
            )
            framed = False  # salvage whatever records parse
        else:
            body_end = len(data) - footer_size
            footer_count, footer_crc = _FOOTER_FMT.unpack_from(
                data, len(data) - _FOOTER_FMT.size
            )
            actual_crc = zlib.crc32(data[4:body_end])
            if actual_crc != footer_crc:
                _tolerate(
                    skip_corrupt,
                    report,
                    f"{path}: checksum mismatch (expected {footer_crc:#010x}, "
                    f"got {actual_crc:#010x}): file corrupted",
                )

    offset = 4
    try:
        count, name_len, cpu = _HEADER_FMT.unpack_from(data, offset)
    except struct.error as exc:
        raise TraceError(
            f"{path}: truncated binary trace: header incomplete at byte {offset}"
        ) from exc
    offset += _HEADER_FMT.size
    if footer_count is not None and footer_count != count:
        # The CRC does not cover the footer itself, so a flip inside the
        # footer's count field is only caught by this cross-check.
        _tolerate(
            skip_corrupt,
            report,
            f"{path}: header/footer record count mismatch ({count} vs "
            f"{footer_count}): file corrupted",
        )
    if offset + name_len > body_end:
        raise TraceError(
            f"{path}: truncated binary trace: name field runs past "
            f"byte {body_end}"
        )
    name = data[offset : offset + name_len].decode("utf-8", errors="replace")
    offset += name_len

    trace = Trace(name=name, cpu=cpu)
    for index in range(count):
        record_start = offset
        try:
            pc, op, dest, ea, size, flags, target, nsrcs = _RECORD_HEAD.unpack_from(
                data[:body_end], offset
            )
            offset += _RECORD_HEAD.size
            srcs = []
            for _ in range(nsrcs):
                (src,) = _SRC_FMT.unpack_from(data[:body_end], offset)
                offset += _SRC_FMT.size
                srcs.append(src)
            op_class = OpClass(op)
        except struct.error:
            _tolerate(
                skip_corrupt,
                report,
                f"{path}: truncated binary trace: record {index}/{count} "
                f"cut off at byte {record_start}",
            )
            report.dropped += count - index
            break
        except ValueError:
            _tolerate(
                skip_corrupt,
                report,
                f"{path}: corrupt record {index}/{count} at byte "
                f"{record_start}: invalid op class {op}",
            )
            report.dropped += 1
            continue
        trace.append(
            TraceRecord(
                pc=pc,
                op=op_class,
                dest=dest,
                srcs=tuple(srcs),
                ea=ea,
                size=size,
                taken=bool(flags & 1),
                target=target,
                privileged=bool(flags & 2),
            )
        )
    if len(trace) + report.dropped != count:
        _tolerate(
            skip_corrupt,
            report,
            f"{path}: truncated binary trace: header promises {count} "
            f"records, parsed {len(trace)}",
        )
        report.dropped = max(report.dropped, count - len(trace))
    report.records = len(trace)
    return trace
