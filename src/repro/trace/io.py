"""Trace file formats.

Two interchangeable formats:

- ``jsonl`` — one JSON object per record; human-inspectable, used in
  examples and debugging.
- ``bin`` — a fixed-width packed binary format (struct-based), roughly 6x
  smaller and faster; used when traces are archived between runs.

The format is chosen by file extension (``.jsonl`` / ``.trc``).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Union

from repro.common.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.trace.record import NO_ADDR, NO_REG, TraceRecord
from repro.trace.stream import Trace

_MAGIC = b"SPT1"

# pc, op, dest, ea, size, flags(taken|priv), target, nsrcs  -> then srcs
_RECORD_HEAD = struct.Struct("<qBbqBBqB")
_SRC_FMT = struct.Struct("<b")


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in the format implied by its suffix."""
    path = Path(path)
    if path.suffix == ".jsonl":
        _write_jsonl(trace, path)
    elif path.suffix == ".trc":
        _write_binary(trace, path)
    else:
        raise TraceError(f"unknown trace format for {path.name!r} (use .jsonl or .trc)")


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return _read_jsonl(path)
    if path.suffix == ".trc":
        return _read_binary(path)
    raise TraceError(f"unknown trace format for {path.name!r} (use .jsonl or .trc)")


# ----------------------------------------------------------------------
# jsonl
# ----------------------------------------------------------------------


def _record_to_dict(record: TraceRecord) -> dict:
    out = {"pc": record.pc, "op": record.op.name}
    if record.dest != NO_REG:
        out["dest"] = record.dest
    if record.srcs:
        out["srcs"] = list(record.srcs)
    if record.ea != NO_ADDR:
        out["ea"] = record.ea
    if record.size:
        out["size"] = record.size
    if record.is_branch:
        out["taken"] = record.taken
        if record.target != NO_ADDR:
            out["target"] = record.target
    if record.privileged:
        out["priv"] = True
    return out


def _record_from_dict(data: dict) -> TraceRecord:
    try:
        op = OpClass[data["op"]]
        return TraceRecord(
            pc=data["pc"],
            op=op,
            dest=data.get("dest", NO_REG),
            srcs=tuple(data.get("srcs", ())),
            ea=data.get("ea", NO_ADDR),
            size=data.get("size", 0),
            taken=data.get("taken", False),
            target=data.get("target", NO_ADDR),
            privileged=data.get("priv", False),
        )
    except (KeyError, TypeError) as exc:
        raise TraceError(f"malformed trace record: {data!r}") from exc


def _write_jsonl(trace: Trace, path: Path) -> None:
    with path.open("w", encoding="utf-8") as handle:
        header = {"name": trace.name, "cpu": trace.cpu, "count": len(trace)}
        handle.write(json.dumps({"header": header}) + "\n")
        for record in trace.records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")


def _read_jsonl(path: Path) -> Trace:
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise TraceError(f"empty trace file: {path}")
        header_line = json.loads(first)
        if "header" not in header_line:
            raise TraceError(f"missing header line in {path}")
        header = header_line["header"]
        trace = Trace(name=header.get("name", path.stem), cpu=header.get("cpu", 0))
        for line in handle:
            line = line.strip()
            if line:
                trace.append(_record_from_dict(json.loads(line)))
    return trace


# ----------------------------------------------------------------------
# binary
# ----------------------------------------------------------------------


def _write_binary(trace: Trace, path: Path) -> None:
    with path.open("wb") as handle:
        name_bytes = trace.name.encode("utf-8")
        handle.write(_MAGIC)
        handle.write(struct.pack("<IHB", len(trace), len(name_bytes), trace.cpu))
        handle.write(name_bytes)
        for record in trace.records:
            flags = (1 if record.taken else 0) | (2 if record.privileged else 0)
            handle.write(
                _RECORD_HEAD.pack(
                    record.pc,
                    int(record.op),
                    record.dest,
                    record.ea,
                    record.size,
                    flags,
                    record.target,
                    len(record.srcs),
                )
            )
            for src in record.srcs:
                handle.write(_SRC_FMT.pack(src))


def _read_binary(path: Path) -> Trace:
    data = path.read_bytes()
    if data[:4] != _MAGIC:
        raise TraceError(f"not a binary trace file: {path}")
    count, name_len, cpu = struct.unpack_from("<IHB", data, 4)
    offset = 4 + 7
    name = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    trace = Trace(name=name, cpu=cpu)
    for _ in range(count):
        pc, op, dest, ea, size, flags, target, nsrcs = _RECORD_HEAD.unpack_from(data, offset)
        offset += _RECORD_HEAD.size
        srcs = []
        for _ in range(nsrcs):
            (src,) = _SRC_FMT.unpack_from(data, offset)
            offset += _SRC_FMT.size
            srcs.append(src)
        trace.append(
            TraceRecord(
                pc=pc,
                op=OpClass(op),
                dest=dest,
                srcs=tuple(srcs),
                ea=ea,
                size=size,
                taken=bool(flags & 1),
                target=target,
                privileged=bool(flags & 2),
            )
        )
    if len(trace) != count:
        raise TraceError(f"truncated binary trace: {path}")
    return trace
