"""Branch history table.

The SPARC64 V uses a 16K-entry, 4-way set-associative BHT with a 2-cycle
access (Table 1); §4.3.2 studies it against a 4K-entry, 2-way, 1-cycle
table.  The access latency matters because a predicted-taken branch
inserts ``access_latency`` fetch bubbles before the target can be fetched
("4k-2w.1t ... generates one bubble in a pipeline before it fetches a
target instruction while 16k-4w.2t generates two bubbles").

The table is tagged (set-associative), entries hold 2-bit saturating
direction counters, and entries are allocated on taken branches — so a
taken branch that has been evicted (capacity/conflict) predicts
not-taken, which is how BHT capacity shows up as mispredictions on
large-footprint workloads (TPC-C, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigError
from repro.common.units import is_power_of_two


@dataclass(frozen=True)
class BhtParams:
    """Geometry and timing of the branch history table."""

    name: str
    entries: int = 16 * 1024
    ways: int = 4
    #: Access latency in cycles = fetch bubbles per predicted-taken branch.
    access_latency: int = 2

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ConfigError(f"{self.name}: entries/ways must be positive")
        if self.entries % self.ways != 0:
            raise ConfigError(f"{self.name}: entries must divide into ways")
        if not is_power_of_two(self.entries // self.ways):
            raise ConfigError(f"{self.name}: BHT set count must be a power of two")
        if self.access_latency < 1:
            raise ConfigError(f"{self.name}: access latency must be >= 1")


#: The paper's production configuration (Table 1).
BHT_16K_4W_2T = BhtParams(name="16k-4w.2t", entries=16 * 1024, ways=4, access_latency=2)

#: The §4.3.2 alternative.
BHT_4K_2W_1T = BhtParams(name="4k-2w.1t", entries=4 * 1024, ways=2, access_latency=1)


@dataclass
class BhtStats:
    """Prediction outcome counters."""

    conditional_branches: int = 0
    mispredictions: int = 0
    taken_misses: int = 0  # taken branches absent from the table

    @property
    def misprediction_ratio(self) -> float:
        """Fraction of conditional branches mispredicted (Figure 10)."""
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches


class _Entry:
    __slots__ = ("tag", "counter", "valid", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.counter = 0
        self.valid = False
        self.lru = 0


class BranchHistoryTable:
    """Tagged, set-associative, 2-bit-counter direction predictor."""

    def __init__(self, params: BhtParams) -> None:
        self.params = params
        sets = params.entries // params.ways
        self._sets: List[List[_Entry]] = [
            [_Entry() for _ in range(params.ways)] for _ in range(sets)
        ]
        self._set_mask = sets - 1
        self._clock = 0
        self.stats = BhtStats()

    def _find(self, pc: int):
        word = pc >> 2
        index = word & self._set_mask
        tag = word >> 0
        bucket = self._sets[index]
        for entry in bucket:
            if entry.valid and entry.tag == tag:
                return bucket, entry, tag
        return bucket, None, tag

    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``.

        A branch with no table entry predicts not-taken.
        """
        _, entry, _ = self._find(pc)
        if entry is None:
            return False
        return entry.counter >= 2

    def warm(self, pc: int, taken: bool) -> None:
        """Functionally train the predictor with one resolved branch.

        Used by warm-up phases (full-run trace prefix, sampled-simulation
        per-window warming): identical table updates to the timed path,
        with the prediction looked up first so accuracy counters stay
        meaningful until the caller resets them.
        """
        self.update(pc, taken, self.predict(pc))

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train the table with the resolved outcome and log accuracy."""
        self._clock += 1
        self.stats.conditional_branches += 1
        if taken != predicted:
            self.stats.mispredictions += 1
        bucket, entry, tag = self._find(pc)
        if entry is None:
            if not taken:
                return  # not-taken branches are not allocated
            self.stats.taken_misses += 1
            victim = None
            for candidate in bucket:
                if not candidate.valid:
                    victim = candidate
                    break
            if victim is None:
                victim = min(bucket, key=lambda candidate: candidate.lru)
            victim.valid = True
            victim.tag = tag
            victim.counter = 2  # weakly taken on allocation
            victim.lru = self._clock
            return
        entry.lru = self._clock
        if taken:
            entry.counter = min(3, entry.counter + 1)
        else:
            entry.counter = max(0, entry.counter - 1)
