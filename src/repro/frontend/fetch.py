"""Fetch unit: the five-stage instruction-fetch pipeline.

Models the paper's I-unit fetch behaviour (§3, §3.1):

- up to eight instructions (one 32-byte fetch group) per cycle;
- a five-stage fetch pipeline (1 priority + 3 L1I access + 1 validate),
  so fetched instructions become decodable ``pipeline_depth`` cycles
  after their fetch cycle;
- fetch stops at a taken control transfer; redirecting to the target
  costs ``BhtParams.access_latency`` bubbles (the 1- vs 2-bubble
  difference at the heart of the §4.3.2 BHT study);
- an L1I miss stalls fetch until the line returns;
- a mispredicted branch blocks fetch past it until the core resolves the
  branch and calls :meth:`FetchUnit.redirect` (trace-driven models do not
  fetch wrong-path instructions; the dead time *is* the penalty).

Prediction bookkeeping: conditional directions come from the BHT,
returns from the RAS, and other transfers are treated as predicted-taken
(the SPARC64 V fetches targets via the branch history table).  The BHT is
trained at fetch time — in a trace-driven single-path model the in-flight
update delay has no second-order effect to capture.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.common.errors import ConfigError
from repro.frontend.bht import BhtParams, BranchHistoryTable
from repro.frontend.ras import ReturnAddressStack
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


@dataclass(frozen=True)
class FrontEndParams:
    """Fetch/decode front-end configuration."""

    fetch_group_bytes: int = 32
    fetch_width: int = 8
    #: Fetch pipeline depth: priority(1) + L1I access(3) + validate(1).
    pipeline_depth: int = 5
    #: Fetch-buffer capacity in instructions.
    buffer_capacity: int = 48
    #: Extra front-end restart cycles after a mispredict resolves.
    redirect_penalty: int = 2
    #: Treat every conditional branch as perfectly predicted (Figure 7).
    perfect_prediction: bool = False
    ras_depth: int = 8

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.fetch_group_bytes <= 0:
            raise ConfigError("fetch width/group must be positive")
        if self.pipeline_depth < 1:
            raise ConfigError("fetch pipeline depth must be >= 1")
        if self.buffer_capacity < self.fetch_width:
            raise ConfigError("fetch buffer must hold at least one fetch group")


class FetchedInstruction:
    """A trace record annotated with fetch/prediction outcomes."""

    __slots__ = ("record", "fetch_cycle", "avail_cycle", "mispredicted", "predicted_taken")

    def __init__(
        self,
        record: TraceRecord,
        fetch_cycle: int,
        avail_cycle: int,
        mispredicted: bool,
        predicted_taken: bool,
    ) -> None:
        self.record = record
        self.fetch_cycle = fetch_cycle
        self.avail_cycle = avail_cycle
        self.mispredicted = mispredicted
        self.predicted_taken = predicted_taken


class FetchUnit:
    """Trace-driven fetch engine feeding the decode buffer."""

    def __init__(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        bht_params: BhtParams,
        params: FrontEndParams,
        bht: Optional[BranchHistoryTable] = None,
    ) -> None:
        self.params = params
        #: ``bht`` lets sampled simulation share one persistent predictor
        #: across per-window cores; by default each core gets its own.
        self.bht = bht if bht is not None else BranchHistoryTable(bht_params)
        self.ras = ReturnAddressStack(params.ras_depth)
        self._hierarchy = hierarchy
        self._records = trace.records
        self._position = 0
        self._buffer: Deque[FetchedInstruction] = deque()
        #: Fetch is idle until this cycle (I-miss, taken-branch bubbles).
        self._stall_until = 0
        #: Why fetch is idle until ``_stall_until``: "icache" (L1I miss or
        #: ITLB walk), "bubble" (taken-branch redirect), or "redirect"
        #: (front-end restart after a resolved mispredict).
        self._stall_reason: Optional[str] = None
        #: True while fetch is blocked behind an unresolved mispredict.
        self._blocked = False
        #: A group whose I-line is already being filled (avoid re-access).
        self._pending_delivery = False
        #: Optional pipeline event tracer (set by the core).
        self.tracer = None
        # Counters.
        self.fetch_groups = 0
        self.icache_stall_cycles = 0
        self.taken_bubble_cycles = 0

    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True when the entire trace has been fetched."""
        return self._position >= len(self._records)

    def buffer_empty(self) -> bool:
        return not self._buffer

    def pop_ready(self, cycle: int, limit: int) -> List[FetchedInstruction]:
        """Remove up to ``limit`` instructions whose fetch pipe completed."""
        out: List[FetchedInstruction] = []
        while self._buffer and len(out) < limit and self._buffer[0].avail_cycle <= cycle:
            out.append(self._buffer.popleft())
        return out

    def redirect(self, cycle: int) -> None:
        """Resume fetch after a mispredicted branch resolves."""
        self._blocked = False
        self._stall_until = max(self._stall_until, cycle + self.params.redirect_penalty)
        self._stall_reason = "redirect"

    def stall_reason(self, cycle: int) -> Optional[str]:
        """Why fetch is delivering nothing at ``cycle`` (for the accountant).

        One of "mispredict" (blocked behind an unresolved branch),
        "drained" (trace exhausted), "icache"/"bubble"/"redirect" (idle
        until ``_stall_until``), or None (actively fetching; anything
        missing downstream is fetch-pipe latency).
        """
        if self._blocked:
            return "mispredict"
        if self.exhausted:
            return "drained"
        if cycle < self._stall_until:
            return self._stall_reason
        return None

    def next_wake_cycle(self) -> Optional[int]:
        """Earliest future cycle at which fetch state can change."""
        if self._blocked or self.exhausted:
            return None
        return self._stall_until

    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Fetch at most one group this cycle."""
        if self._blocked or self.exhausted or cycle < self._stall_until:
            return
        if len(self._buffer) + self.params.fetch_width > self.params.buffer_capacity:
            return

        if self._pending_delivery:
            self._pending_delivery = False
            self._deliver_group(cycle)
            return

        first = self._records[self._position]
        access = self._hierarchy.fetch(cycle, first.pc)
        if access.level != "l1" or access.tlb_cycles:
            # Miss (or TLB walk): the group arrives when the line does.
            self._stall_until = access.ready_cycle
            self._stall_reason = "icache"
            self.icache_stall_cycles += access.ready_cycle - cycle
            self._pending_delivery = True
            return

        self._deliver_group(cycle)

    def _deliver_group(self, cycle: int) -> None:
        params = self.params
        group_mask = ~(params.fetch_group_bytes - 1)
        first = self._records[self._position]
        group_base = first.pc & group_mask
        avail = cycle + params.pipeline_depth
        count = 0
        redirected = False

        while (
            not redirected
            and count < params.fetch_width
            and self._position < len(self._records)
        ):
            record = self._records[self._position]
            if record.pc & group_mask != group_base:
                break
            mispredicted = False
            predicted_taken = False
            if record.op == OpClass.BRANCH_COND:
                if params.perfect_prediction:
                    predicted_taken = record.taken
                else:
                    predicted_taken = self.bht.predict(record.pc)
                    mispredicted = predicted_taken != record.taken
                    self.bht.update(record.pc, record.taken, predicted_taken)
            elif record.op == OpClass.CALL:
                predicted_taken = True
                self.ras.push(record.pc + 4)
            elif record.op == OpClass.RETURN:
                predicted_taken = True
                if not params.perfect_prediction:
                    mispredicted = not self.ras.predict_return(record.target)
                else:
                    self.ras.predict_return(record.target)
            elif record.op == OpClass.BRANCH_UNCOND:
                predicted_taken = True

            self._buffer.append(
                FetchedInstruction(record, cycle, avail, mispredicted, predicted_taken)
            )
            self._position += 1
            count += 1

            if mispredicted:
                # Fetch follows the wrong path; deliver nothing further
                # until the core resolves this branch.
                self._blocked = True
                redirected = True
            elif record.taken:
                # Correctly-predicted taken transfer: redirect with the
                # BHT-access bubble penalty.
                bubbles = self.bht.params.access_latency
                self._stall_until = cycle + 1 + bubbles
                self._stall_reason = "bubble"
                self.taken_bubble_cycles += bubbles
                redirected = True

        self.fetch_groups += 1
        if self.tracer is not None and count:
            self.tracer.emit(cycle, "fetch", -1, first.pc, count)
