"""Return-address stack.

CALL pushes the return address; RETURN pops and predicts it.  In a
trace-driven model the *target* is always known from the trace, so the
RAS's contribution is whether a RETURN's redirect was predicted (top of
stack matches) or costs a misprediction-style resolve.
"""

from __future__ import annotations

from typing import List


class ReturnAddressStack:
    """A fixed-depth circular return-address predictor."""

    def __init__(self, depth: int = 8) -> None:
        self.depth = max(1, depth)
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0
        self.correct = 0

    def push(self, return_pc: int) -> None:
        """Record the return address of a CALL."""
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            del self._stack[0]
        self.pushes += 1

    def predict_return(self, actual_target: int) -> bool:
        """Pop and compare with the trace's actual return target."""
        self.pops += 1
        if not self._stack:
            return False
        predicted = self._stack.pop()
        hit = predicted == actual_target
        if hit:
            self.correct += 1
        return hit

    @property
    def accuracy(self) -> float:
        if self.pops == 0:
            return 0.0
        return self.correct / self.pops
