"""Instruction-fetch front end.

Implements the I-unit of Figure 4: the branch history table used to steer
fetch, the return-address stack, and the five-stage fetch pipeline that
delivers up to eight instructions (32 bytes) per cycle to the decoder.
"""

from repro.frontend.bht import BhtParams, BranchHistoryTable, BhtStats
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.fetch import FetchedInstruction, FetchUnit, FrontEndParams

__all__ = [
    "BhtParams",
    "BranchHistoryTable",
    "BhtStats",
    "ReturnAddressStack",
    "FetchUnit",
    "FetchedInstruction",
    "FrontEndParams",
]
