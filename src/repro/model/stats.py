"""Aggregated simulation results."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import CoreStats


@dataclass
class SimResult:
    """Everything measured by one performance-model run."""

    config_name: str
    trace_name: str
    core: CoreStats
    l1i: Dict[str, float] = field(default_factory=dict)
    l1d: Dict[str, float] = field(default_factory=dict)
    l2: Dict[str, float] = field(default_factory=dict)
    itlb_miss_ratio: float = 0.0
    dtlb_miss_ratio: float = 0.0
    bht_misprediction_ratio: float = 0.0
    system_bus_utilization: float = 0.0
    l1_l2_bus_utilization: float = 0.0
    prefetches_issued: int = 0
    #: Wall-clock simulation speed, trace instructions per host second.
    sim_speed: float = 0.0
    warmup_instructions: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.core.ipc

    @property
    def cycles(self) -> int:
        return self.core.cycles

    @property
    def instructions(self) -> int:
        return self.core.instructions

    def miss_ratio(self, cache: str, demand_only: bool = True) -> float:
        """Demand (or total) miss ratio of "l1i"/"l1d"/"l2"."""
        stats = getattr(self, cache)
        key = "demand_miss_ratio" if demand_only else "total_miss_ratio"
        return float(stats.get(key, 0.0))

    def as_dict(self, include_speed: bool = True) -> Dict[str, object]:
        """Rounded summary; ``include_speed=False`` drops the one
        wall-clock-dependent field, leaving only deterministic
        architectural statistics (what the determinism tests compare)."""
        data = self._as_dict()
        if not include_speed:
            data.pop("sim_speed_ips")
        return data

    def _as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "trace": self.trace_name,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": round(self.ipc, 4),
            "l1i_miss_ratio": round(self.miss_ratio("l1i"), 5),
            "l1d_miss_ratio": round(self.miss_ratio("l1d"), 5),
            "l2_miss_ratio": round(self.miss_ratio("l2"), 5),
            "bht_misprediction_ratio": round(self.bht_misprediction_ratio, 5),
            "itlb_miss_ratio": round(self.itlb_miss_ratio, 5),
            "dtlb_miss_ratio": round(self.dtlb_miss_ratio, 5),
            "replays": self.core.replays,
            "bank_conflicts": self.core.bank_conflicts,
            "store_forwards": self.core.store_forwards,
            "system_bus_utilization": round(self.system_bus_utilization, 4),
            "sim_speed_ips": round(self.sim_speed, 1),
        }

    def summary(self) -> str:
        """One-screen human-readable report."""
        data = self.as_dict()
        width = max(len(key) for key in data)
        return "\n".join(f"{key:<{width}}  {value}" for key, value in data.items())

    def metrics(self) -> Dict[str, object]:
        """Flat ``{name: value}`` view via the metrics registry.

        Every consumer (runner, figures, ``repro analyze``) reads results
        through this one contract; see :mod:`repro.observe.registry`.
        """
        from repro.observe.registry import collect

        return collect(self)

    def cpi_stack_report(self) -> str:
        """The CPI stack rendered as aligned text (empty string if absent)."""
        from repro.observe.cpistack import render_stack

        if not self.core.cpi_stack:
            return ""
        return render_stack(self.core.cpi_stack, self.core.cycles)

    def to_dict(self) -> Dict[str, object]:
        """Full lossless serialisation (inverse of :meth:`from_dict`).

        Unlike :meth:`as_dict` — a rounded human-facing summary — this
        preserves every field exactly, so a result can round-trip
        through JSON (e.g. the on-disk experiment cache) and report the
        same ``ipc``/``cycles``/``miss_ratio`` values as the original.
        """
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "core"
        }
        payload["core"] = asdict(self.core)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimResult":
        """Rebuild a result serialised by :meth:`to_dict`."""
        data = dict(payload)
        core_data = dict(data.pop("core"))
        core = CoreStats(**core_data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimResult fields: {sorted(unknown)}")
        return cls(core=core, **data)


@dataclass
class SampledSimResult(SimResult):
    """A :class:`SimResult` produced by SMARTS-style sampled simulation.

    ``core`` and the cache/TLB/bus fields hold the *measured* totals
    summed over every detailed window (so all SimResult consumers — the
    metrics registry, figures, sweeps — work unchanged), while
    ``estimates`` carries the statistical view: a 95 % confidence
    interval for IPC, CPI and every CPI-stack category, keyed ``"ipc"``,
    ``"cpi"`` and ``"cpi.<category>"`` (see
    :mod:`repro.analysis.estimate`).  ``sampling`` records the schedule
    (period/length/warmup), the window count, and the
    detailed-instruction budget versus the full trace length.  The
    per-window vectors exist for diagnostics: when a validation check
    fails, the per-window distribution is what explains why.
    """

    sampling: Dict[str, object] = field(default_factory=dict)
    estimates: Dict[str, Dict[str, float]] = field(default_factory=dict)
    window_instructions: List[int] = field(default_factory=list)
    window_cycles: List[int] = field(default_factory=list)
    window_stacks: List[Dict[str, int]] = field(default_factory=list)

    @property
    def window_count(self) -> int:
        return len(self.window_cycles)

    @property
    def detailed_instructions(self) -> int:
        return int(self.sampling.get("detailed_instructions", 0))

    @property
    def trace_instructions(self) -> int:
        return int(self.sampling.get("trace_instructions", 0))

    @property
    def detail_reduction(self) -> float:
        """How many× fewer instructions ran in detail than the trace holds."""
        if self.detailed_instructions == 0:
            return 0.0
        return self.trace_instructions / self.detailed_instructions

    @property
    def window_ipcs(self) -> List[float]:
        return [
            insts / cycles
            for insts, cycles in zip(self.window_instructions, self.window_cycles)
            if cycles
        ]

    def estimate(self, metric: str) -> Optional[Dict[str, float]]:
        """The ``{mean, lo, hi, stddev, n}`` dict for one metric, if any."""
        return self.estimates.get(metric)

    @property
    def ipc_interval(self) -> Tuple[float, float]:
        est = self.estimates.get("ipc")
        if not est:
            return (self.ipc, self.ipc)
        return (est["lo"], est["hi"])

    @property
    def ipc_half_width(self) -> float:
        lo, hi = self.ipc_interval
        return (hi - lo) / 2.0

    def _as_dict(self) -> Dict[str, object]:
        data = super()._as_dict()
        data["sampled_windows"] = self.window_count
        data["detailed_instructions"] = self.detailed_instructions
        data["detail_reduction"] = round(self.detail_reduction, 1)
        est = self.estimates.get("ipc")
        if est:
            data["ipc_ci95"] = f"[{est['lo']:.4f}, {est['hi']:.4f}]"
        return data

    def estimates_report(self) -> str:
        """The confidence intervals rendered as aligned text."""
        if not self.estimates:
            return ""
        rows = []
        for name, est in self.estimates.items():
            mean = est["mean"]
            half = (est["hi"] - est["lo"]) / 2.0
            rel = f"±{100.0 * half / mean:.1f}%" if mean else "±n/a"
            rows.append((name, f"{mean:.4f}", f"[{est['lo']:.4f}, {est['hi']:.4f}]", rel))
        name_w = max(len(r[0]) for r in rows)
        mean_w = max(len(r[1]) for r in rows)
        ci_w = max(len(r[2]) for r in rows)
        lines = [
            f"{name:<{name_w}}  {mean:>{mean_w}}  {ci:<{ci_w}}  {rel}"
            for name, mean, ci, rel in rows
        ]
        header = f"{'metric':<{name_w}}  {'mean':>{mean_w}}  {'95% CI':<{ci_w}}"
        return "\n".join([header] + lines)


def sim_result_from_dict(payload: Dict[str, object]) -> SimResult:
    """Rebuild a serialised result, sampled or not.

    The on-disk experiment cache stores both kinds through one code
    path; the ``sampling`` key marks the sampled flavour.
    """
    cls = SampledSimResult if "sampling" in payload else SimResult
    return cls.from_dict(payload)


def ipc_ratio(alternative: SimResult, baseline: SimResult) -> float:
    """IPC of ``alternative`` as a fraction of ``baseline`` (paper's ratios)."""
    if baseline.ipc == 0:
        return 0.0
    return alternative.ipc / baseline.ipc
