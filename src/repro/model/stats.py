"""Aggregated simulation results."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional

from repro.core.pipeline import CoreStats


@dataclass
class SimResult:
    """Everything measured by one performance-model run."""

    config_name: str
    trace_name: str
    core: CoreStats
    l1i: Dict[str, float] = field(default_factory=dict)
    l1d: Dict[str, float] = field(default_factory=dict)
    l2: Dict[str, float] = field(default_factory=dict)
    itlb_miss_ratio: float = 0.0
    dtlb_miss_ratio: float = 0.0
    bht_misprediction_ratio: float = 0.0
    system_bus_utilization: float = 0.0
    l1_l2_bus_utilization: float = 0.0
    prefetches_issued: int = 0
    #: Wall-clock simulation speed, trace instructions per host second.
    sim_speed: float = 0.0
    warmup_instructions: int = 0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.core.ipc

    @property
    def cycles(self) -> int:
        return self.core.cycles

    @property
    def instructions(self) -> int:
        return self.core.instructions

    def miss_ratio(self, cache: str, demand_only: bool = True) -> float:
        """Demand (or total) miss ratio of "l1i"/"l1d"/"l2"."""
        stats = getattr(self, cache)
        key = "demand_miss_ratio" if demand_only else "total_miss_ratio"
        return float(stats.get(key, 0.0))

    def as_dict(self, include_speed: bool = True) -> Dict[str, object]:
        """Rounded summary; ``include_speed=False`` drops the one
        wall-clock-dependent field, leaving only deterministic
        architectural statistics (what the determinism tests compare)."""
        data = self._as_dict()
        if not include_speed:
            data.pop("sim_speed_ips")
        return data

    def _as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config_name,
            "trace": self.trace_name,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": round(self.ipc, 4),
            "l1i_miss_ratio": round(self.miss_ratio("l1i"), 5),
            "l1d_miss_ratio": round(self.miss_ratio("l1d"), 5),
            "l2_miss_ratio": round(self.miss_ratio("l2"), 5),
            "bht_misprediction_ratio": round(self.bht_misprediction_ratio, 5),
            "itlb_miss_ratio": round(self.itlb_miss_ratio, 5),
            "dtlb_miss_ratio": round(self.dtlb_miss_ratio, 5),
            "replays": self.core.replays,
            "bank_conflicts": self.core.bank_conflicts,
            "store_forwards": self.core.store_forwards,
            "system_bus_utilization": round(self.system_bus_utilization, 4),
            "sim_speed_ips": round(self.sim_speed, 1),
        }

    def summary(self) -> str:
        """One-screen human-readable report."""
        data = self.as_dict()
        width = max(len(key) for key in data)
        return "\n".join(f"{key:<{width}}  {value}" for key, value in data.items())

    def metrics(self) -> Dict[str, object]:
        """Flat ``{name: value}`` view via the metrics registry.

        Every consumer (runner, figures, ``repro analyze``) reads results
        through this one contract; see :mod:`repro.observe.registry`.
        """
        from repro.observe.registry import collect

        return collect(self)

    def cpi_stack_report(self) -> str:
        """The CPI stack rendered as aligned text (empty string if absent)."""
        from repro.observe.cpistack import render_stack

        if not self.core.cpi_stack:
            return ""
        return render_stack(self.core.cpi_stack, self.core.cycles)

    def to_dict(self) -> Dict[str, object]:
        """Full lossless serialisation (inverse of :meth:`from_dict`).

        Unlike :meth:`as_dict` — a rounded human-facing summary — this
        preserves every field exactly, so a result can round-trip
        through JSON (e.g. the on-disk experiment cache) and report the
        same ``ipc``/``cycles``/``miss_ratio`` values as the original.
        """
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "core"
        }
        payload["core"] = asdict(self.core)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimResult":
        """Rebuild a result serialised by :meth:`to_dict`."""
        data = dict(payload)
        core_data = dict(data.pop("core"))
        core = CoreStats(**core_data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimResult fields: {sorted(unknown)}")
        return cls(core=core, **data)


def ipc_ratio(alternative: SimResult, baseline: SimResult) -> float:
    """IPC of ``alternative`` as a fraction of ``baseline`` (paper's ratios)."""
    if baseline.ipc == 0:
        return 0.0
    return alternative.ipc / baseline.ipc
