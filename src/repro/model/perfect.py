"""Execution-time breakdown via perfect-structure models (Figure 7).

The paper characterises each workload by running the model with
progressively idealised structures: "We modeled a perfect L2 cache, a
perfect L1 cache, perfect TLB, and perfect branch prediction, and then
evaluate several models to find out the penalty of stalls."

The decomposition, matching Figure 7's four categories:

- ``sx``       = cycles(base) − cycles(perfect L2): stalls caused by L2
  misses (serviced by the SX-unit, hence the name);
- ``ibs_tlb``  = cycles(perfect L2) − cycles(perfect L1 + TLB): stalls
  caused by L1 misses and TLB walks;
- ``branch``   = cycles(perfect L1 + TLB) − cycles(… + perfect branch
  prediction): stalls caused by branch prediction failures;
- ``core``     = cycles with everything perfect: execution time in the
  I-unit and E-unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.model.config import MachineConfig
from repro.model.simulator import PerformanceModel
from repro.trace.stream import Trace


@dataclass
class StallBreakdown:
    """Fractions of base execution time per Figure 7 category."""

    trace_name: str
    base_cycles: int
    core: float
    branch: float
    ibs_tlb: float
    sx: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "core": round(self.core, 4),
            "branch": round(self.branch, 4),
            "ibs/tlb": round(self.ibs_tlb, 4),
            "sx": round(self.sx, 4),
        }

    def validate(self) -> None:
        total = self.core + self.branch + self.ibs_tlb + self.sx
        assert abs(total - 1.0) < 1e-6, f"breakdown does not sum to 1: {total}"


def perfect_variants(config: MachineConfig) -> List[MachineConfig]:
    """The four models of the decomposition: base → everything perfect."""
    return [
        config,
        config.derived(f"{config.name}+perfectL2", perfect_l2=True),
        config.derived(
            f"{config.name}+perfectL1",
            perfect_l1=True,
            perfect_l2=True,
            perfect_tlb=True,
        ),
        config.derived(
            f"{config.name}+perfectAll",
            perfect_l1=True,
            perfect_l2=True,
            perfect_tlb=True,
            perfect_branch_prediction=True,
        ),
    ]


def breakdown_from_cycles(
    trace_name: str,
    base_cycles: int,
    perfect_l2_cycles: int,
    perfect_l1_cycles: int,
    perfect_all_cycles: int,
) -> StallBreakdown:
    """Assemble the Figure 7 decomposition from the four cycle counts."""
    # Idealising a structure can never be allowed to *increase* time in
    # the decomposition; clamp tiny modelling inversions to zero.
    sx = max(base_cycles - perfect_l2_cycles, 0)
    ibs_tlb = max(perfect_l2_cycles - perfect_l1_cycles, 0)
    branch = max(perfect_l1_cycles - perfect_all_cycles, 0)
    core = base_cycles - sx - ibs_tlb - branch

    return StallBreakdown(
        trace_name=trace_name,
        base_cycles=base_cycles,
        core=core / base_cycles,
        branch=branch / base_cycles,
        ibs_tlb=ibs_tlb / base_cycles,
        sx=sx / base_cycles,
    )


def stall_breakdown(
    config: MachineConfig,
    trace: Trace,
    warmup_fraction: float = 0.1,
    regions: dict = None,
) -> StallBreakdown:
    """Compute the Figure 7 decomposition for one workload."""
    cycles = [
        PerformanceModel(variant).run(trace, warmup_fraction, regions=regions).cycles
        for variant in perfect_variants(config)
    ]
    return breakdown_from_cycles(trace.name, *cycles)
