"""The uniprocessor performance model.

Wires a :class:`~repro.model.config.MachineConfig` into a fetch unit,
core and memory hierarchy and runs a trace through them, the way the
paper's trace-driven simulator does.

Warm-up: the paper's traces are captured after the workload reaches a
steady state, so its model starts with warm micro-architectural state.
Synthetic traces start cold; :meth:`PerformanceModel.run` therefore
*functionally* warms the caches, TLBs and BHT on a leading fraction of
the trace (touching tags without timing), then runs the timed simulation
on the remainder.  The timed region never sees its own future.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Type

from repro.common.errors import ConfigError
from repro.core.fastcore import FastProcessorCore
from repro.core.pipeline import ProcessorCore, functional_warm
from repro.frontend.bht import BranchHistoryTable
from repro.memory.hierarchy import MemoryHierarchy
from repro.model.config import ENGINE_CHOICES, MachineConfig
from repro.model.stats import SampledSimResult, SimResult
from repro.trace.sampling import SamplingPlan
from repro.trace.stream import Trace

#: Core engine registry: engine name -> ProcessorCore class.  Both
#: engines implement identical semantics; see tests/test_engine_equivalence.
CORE_ENGINES: dict = {
    "reference": ProcessorCore,
    "fast": FastProcessorCore,
}


def resolve_engine(config: MachineConfig, engine: Optional[str] = None) -> str:
    """Pick the core engine: explicit arg > $REPRO_ENGINE > config field."""
    choice = engine or os.environ.get("REPRO_ENGINE") or config.engine
    if choice not in ENGINE_CHOICES:
        raise ConfigError(
            f"unknown engine {choice!r} (choices: {', '.join(ENGINE_CHOICES)})"
        )
    return choice


def core_class(config: MachineConfig, engine: Optional[str] = None) -> Type[ProcessorCore]:
    """The ProcessorCore implementation selected for ``config``."""
    return CORE_ENGINES[resolve_engine(config, engine)]


def build_hierarchy(config: MachineConfig, cpu: int = 0, **shared) -> MemoryHierarchy:
    """Construct the memory hierarchy described by ``config``."""
    return MemoryHierarchy(
        l1i=config.l1i,
        l1d=config.l1d,
        l2=config.l2,
        itlb=config.itlb,
        dtlb=config.dtlb,
        l1_l2_bus=config.l1_l2_bus,
        system_bus=config.system_bus,
        memory=config.memory,
        prefetch=config.prefetch,
        cpu=cpu,
        perfect_l1=config.perfect_l1,
        perfect_l2=config.perfect_l2,
        perfect_tlb=config.perfect_tlb,
        **shared,
    )


def prewarm_regions(hierarchy: MemoryHierarchy, regions: dict) -> None:
    """Install steady-state residency for a workload's memory regions.

    Touches every line of each region into the L2 (and data lines into
    the L1D, code lines into the L1I), in an order that leaves the *hot*
    sub-regions most recently used: cold spans first, ``*_hot`` spans
    last.  This removes the first-touch transient that synthetic traces
    would otherwise pay for the paper's steady-state workloads — after
    pre-warming, each cache holds whatever its capacity allows.
    """
    line = hierarchy.l2.geometry.line_bytes

    def touch_span(base: int, size: int, data: bool) -> None:
        for addr in range(base, base + size, line):
            if not hierarchy.l2.lookup(addr):
                hierarchy.l2.fill(addr)
            if data:
                if not hierarchy.l1d.lookup(addr):
                    hierarchy.l1d.fill(addr)
            else:
                if not hierarchy.l1i.lookup(addr):
                    hierarchy.l1i.fill(addr)

    # Touch order = reverse residency priority.  Big cold data regions go
    # first (only their tail survives in the L2), code next (code is the
    # steady-state L2 resident that OLTP I-fetch depends on), hot data
    # regions last (most recently used everywhere).
    hot_names = sorted(name for name in regions if name.endswith("_hot"))
    code_names = sorted(
        name for name in regions if "code" in name and not name.endswith("_hot")
    )
    cold_names = sorted(
        name
        for name in regions
        if name not in hot_names and name not in code_names
    )
    for name in cold_names + code_names + hot_names:
        base, size = regions[name]
        touch_span(base, size, data="data" in name)


def warm_structures(
    hierarchy: MemoryHierarchy,
    bht: Optional[BranchHistoryTable],
    trace: Trace,
) -> None:
    """Functionally touch caches/TLBs/BHT with ``trace`` (no timing).

    Fill decisions mirror the timed path: L1 and L2 are filled on misses,
    stores dirty their lines, branches train the predictor (see
    :func:`repro.core.pipeline.functional_warm`, which sampled simulation
    shares).  Statistics are reset afterwards so the timed region starts
    from zero counters.
    """
    functional_warm(hierarchy, bht, trace.records)
    # Reset statistics accumulated during warming.
    hierarchy.l1i.stats.__init__()
    hierarchy.l1d.stats.__init__()
    hierarchy.l2.stats.__init__()
    hierarchy.itlb.stats.__init__()
    hierarchy.dtlb.stats.__init__()
    if bht is not None:
        bht.stats.__init__()


class PerformanceModel:
    """Configurable trace-driven uniprocessor simulator.

    ``engine`` selects the core implementation ("reference" or "fast");
    when None the ``REPRO_ENGINE`` environment variable and then the
    config's ``engine`` field decide.  Both engines are bit-identical.
    """

    def __init__(self, config: MachineConfig, engine: Optional[str] = None) -> None:
        self.config = config
        self.engine = resolve_engine(config, engine)
        self._core_cls = CORE_ENGINES[self.engine]

    def run(
        self,
        trace: Trace,
        warmup_fraction: float = 0.1,
        regions: Optional[dict] = None,
        tracer=None,
    ) -> SimResult:
        """Simulate ``trace``; the leading fraction warms state untimed.

        ``regions`` (from :meth:`TraceGenerator.memory_regions`) enables
        steady-state pre-warming before the trace-prefix warm-up.
        ``tracer`` (a :class:`~repro.observe.events.PipelineTracer`)
        enables per-cycle pipeline event capture for the timed region.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if len(trace) == 0:
            raise ConfigError("cannot simulate an empty trace")

        split = int(len(trace) * warmup_fraction)
        warm_part = trace.head(split) if split else None
        timed_part = trace[split:] if split else trace

        config = self.config
        hierarchy = build_hierarchy(config)

        frontend = config.frontend
        if config.perfect_branch_prediction and not frontend.perfect_prediction:
            frontend = FrontEndParamsWithPerfect(frontend)

        core = self._core_cls(
            timed_part, hierarchy, config.core, frontend, config.bht
        )
        if tracer is not None:
            core.attach_tracer(tracer)
        if regions:
            prewarm_regions(hierarchy, regions)
        if warm_part is not None:
            warm_structures(hierarchy, core.fetch.bht, warm_part)
        elif regions:
            # No trace prefix: still reset the counters the pre-warm touched.
            hierarchy.l1i.stats.__init__()
            hierarchy.l1d.stats.__init__()
            hierarchy.l2.stats.__init__()

        started = time.perf_counter()
        core_stats = core.run()
        elapsed = max(time.perf_counter() - started, 1e-9)

        return SimResult(
            config_name=config.name,
            trace_name=trace.name,
            core=core_stats,
            l1i=hierarchy.l1i.stats.as_dict(),
            l1d=hierarchy.l1d.stats.as_dict(),
            l2=hierarchy.l2.stats.as_dict(),
            itlb_miss_ratio=hierarchy.itlb.stats.miss_ratio,
            dtlb_miss_ratio=hierarchy.dtlb.stats.miss_ratio,
            bht_misprediction_ratio=core.fetch.bht.stats.misprediction_ratio,
            system_bus_utilization=hierarchy.system_bus.utilization(core_stats.cycles),
            l1_l2_bus_utilization=hierarchy.l1_l2_bus.utilization(core_stats.cycles),
            prefetches_issued=hierarchy.prefetcher.stats.issued,
            sim_speed=core_stats.instructions / elapsed,
            warmup_instructions=split,
        )

    def run_sampled(
        self,
        trace: Trace,
        plan: SamplingPlan,
        regions: Optional[dict] = None,
    ) -> SampledSimResult:
        """SMARTS-style sampled simulation of ``trace``.

        The schedule in ``plan`` places a measurement window every
        ``period`` instructions.  Instructions between detailed windows
        are *functionally warmed* — caches, TLBs and the BHT see every
        reference, but nothing is timed — so long-lived state tracks the
        full run closely (SMARTS' always-on functional warming; skipping
        the gaps outright leaves stale cache/predictor state and biases
        every window's CPI upward).  Each window then runs
        ``detail_warmup + sample_length + drain_pad`` instructions
        through the detailed core, measuring only the middle span (see
        :meth:`ProcessorCore.run_measured`).  Per-window timing
        reservations are rewound, since every window restarts at cycle 0.

        Aggregated totals populate the usual :class:`SimResult` fields;
        per-window dispersion yields the 95 % confidence intervals in
        ``SampledSimResult.estimates``.
        """
        # Imported here: repro.analysis imports this module at package
        # init, so a module-level import would be circular.
        from repro.analysis import estimate

        if len(trace) == 0:
            raise ConfigError("cannot simulate an empty trace")
        windows = list(plan.windows(len(trace)))
        if not windows:
            raise ConfigError(
                f"sampling plan {plan.key()} schedules no windows in a "
                f"{len(trace)}-instruction trace (needs >= {plan.span})"
            )

        config = self.config
        hierarchy = build_hierarchy(config)
        frontend = config.frontend
        if config.perfect_branch_prediction and not frontend.perfect_prediction:
            frontend = FrontEndParamsWithPerfect(frontend)
        bht = BranchHistoryTable(config.bht)
        if regions:
            prewarm_regions(hierarchy, regions)

        records = trace.records
        measurements = []
        warmed = 0
        detailed = 0
        cursor = 0  # everything before this index has been warmed or run
        started = time.perf_counter()
        for window in windows:
            if cursor < window.detail_start:
                warmed += functional_warm(
                    hierarchy,
                    bht,
                    records[cursor : window.detail_start],
                    prefetch=True,
                )
            hierarchy.reset_timing()
            window_trace = Trace(
                records[window.detail_start : window.end],
                name=f"{trace.name}#w{window.index}",
                cpu=trace.cpu,
            )
            core = self._core_cls(
                window_trace, hierarchy, config.core, frontend, config.bht, bht=bht
            )
            detailed += len(window_trace)
            measurements.append(
                core.run_measured(
                    window.measure_start - window.detail_start,
                    window.measure_end - window.detail_start,
                )
            )
            cursor = window.end
        elapsed = max(time.perf_counter() - started, 1e-9)

        core_stats = estimate.merge_core_stats(measurements)
        estimates = estimate.compute_estimates(measurements)
        itlb = estimate.sum_counts([m["itlb"] for m in measurements])
        dtlb = estimate.sum_counts([m["dtlb"] for m in measurements])
        cycles = max(core_stats.cycles, 1)
        return SampledSimResult(
            config_name=config.name,
            trace_name=trace.name,
            core=core_stats,
            l1i=estimate.merge_cache_counts([m["l1i"] for m in measurements]),
            l1d=estimate.merge_cache_counts([m["l1d"] for m in measurements]),
            l2=estimate.merge_cache_counts([m["l2"] for m in measurements]),
            itlb_miss_ratio=itlb["misses"] / max(itlb["accesses"], 1),
            dtlb_miss_ratio=dtlb["misses"] / max(dtlb["accesses"], 1),
            bht_misprediction_ratio=core_stats.misprediction_ratio,
            system_bus_utilization=min(
                1.0, sum(m["system_bus_busy"] for m in measurements) / cycles
            ),
            l1_l2_bus_utilization=min(
                1.0, sum(m["l1_l2_bus_busy"] for m in measurements) / cycles
            ),
            prefetches_issued=sum(m["prefetches_issued"] for m in measurements),
            # Effective speed: the whole trace covered per host second.
            sim_speed=len(trace) / elapsed,
            warmup_instructions=warmed,
            sampling={
                "period": plan.period,
                "sample_length": plan.sample_length,
                "warmup": plan.warmup,
                "detail_warmup": plan.detail_warmup,
                "drain_pad": plan.drain_pad,
                "windows": len(windows),
                "trace_instructions": len(trace),
                "measured_instructions": core_stats.instructions,
                "warmed_instructions": warmed,
                "detailed_instructions": detailed,
            },
            estimates={name: est.to_dict() for name, est in estimates.items()},
            window_instructions=[m["instructions"] for m in measurements],
            window_cycles=[m["cycles"] for m in measurements],
            window_stacks=[m["cpi_stack"] for m in measurements],
        )


def FrontEndParamsWithPerfect(frontend):
    """Copy front-end params with perfect prediction enabled."""
    from dataclasses import replace

    return replace(frontend, perfect_prediction=True)
