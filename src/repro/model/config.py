"""Machine configurations.

:func:`base_config` reproduces Table 1 — the production SPARC64 V — and
the other factories produce the design-space alternatives studied in §4:

========================  =======================================  ========
factory                   paper alternative                        figure
========================  =======================================  ========
``issue_2way``            2-way issue vs 4-way                     Fig. 8
``bht_4k_2w_1t``          4K-entry 2-way 1-cycle BHT               Fig. 9/10
``l1_32k_1w_3c``          32 KB direct-mapped 3-cycle L1           Fig. 11–13
``l2_off_8m_2w``          off-chip 8 MB 2-way L2 (+10 ns)          Fig. 14/15
``l2_off_8m_1w``          off-chip 8 MB direct-mapped L2 (+10 ns)  Fig. 14/15
``prefetch_off``          no hardware prefetch                     Fig. 16/17
``one_rs``                single RS per unit pair, 2 dispatches    Fig. 18
========================  =======================================  ========

Latency notes (all in 1.3 GHz CPU cycles):

- L1 hits: 4 cycles for the 128 KB 2-way operand cache ("128k-2w.4c"),
  3 for the 32 KB direct-mapped alternative ("32k-1w.3c"); the
  instruction side uses the 3-cycle fetch-access of the 5-stage fetch
  pipeline.
- On-chip L2 hit: 12 cycles.  Off-chip adds the paper's 10 ns chip
  crossing — 13 cycles at 1.3 GHz — on top, and the pin-limited
  interface halves the transfer bandwidth.
- Main memory: ~200 ns ≈ 260 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict

from repro.common.units import ns_to_cycles
from repro.core.params import CoreParams, RsOrganization
from repro.frontend.bht import BHT_4K_2W_1T, BHT_16K_4W_2T, BhtParams
from repro.frontend.fetch import FrontEndParams
from repro.memory.params import (
    BusParams,
    CacheGeometry,
    MemoryParams,
    PrefetchParams,
    TlbGeometry,
)

#: Chip-crossing penalty for the off-chip L2 study (§4.3.4: "we add 10ns").
OFF_CHIP_EXTRA_CYCLES = ns_to_cycles(10.0)  # 13 cycles at 1.3 GHz

#: Selectable core engines.  Both produce bit-identical results; the
#: fast engine trades interpretability of the inner loop for throughput
#: (see :mod:`repro.core.fastcore`).
ENGINE_CHOICES = ("reference", "fast")


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine description for the performance model."""

    name: str = "SPARC64-V"
    core: CoreParams = field(default_factory=CoreParams)
    frontend: FrontEndParams = field(default_factory=FrontEndParams)
    bht: BhtParams = field(default_factory=lambda: BHT_16K_4W_2T)
    l1i: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            "L1I", 128 * 1024, 2, hit_latency=3, port_occupancy=1, mshr_count=4
        )
    )
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            "L1D",
            128 * 1024,
            2,
            hit_latency=4,
            mshr_count=8,
            banks=8,
            bank_bytes=4,
            ports=2,
        )
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            "L2-on.2m-4w", 2 * 1024 * 1024, 4, hit_latency=12, mshr_count=16
        )
    )
    itlb: TlbGeometry = field(
        default_factory=lambda: TlbGeometry("ITLB", entries=128, ways=4, miss_penalty=50)
    )
    dtlb: TlbGeometry = field(
        default_factory=lambda: TlbGeometry("DTLB", entries=512, ways=4, miss_penalty=50)
    )
    #: L1<->L2 interface: on-chip, wide and fast.
    l1_l2_bus: BusParams = field(
        default_factory=lambda: BusParams("l1-l2", latency=2, bytes_per_cycle=32)
    )
    #: System bus to memory and other processors.
    system_bus: BusParams = field(
        default_factory=lambda: BusParams("system", latency=24, bytes_per_cycle=8)
    )
    memory: MemoryParams = field(default_factory=lambda: MemoryParams(latency=260))
    prefetch: PrefetchParams = field(default_factory=PrefetchParams)
    perfect_l1: bool = False
    perfect_l2: bool = False
    perfect_tlb: bool = False
    perfect_branch_prediction: bool = False
    #: Core engine: "reference" (the readable cycle loop) or "fast" (the
    #: slot-recycled hot path; bit-identical results).  Participates in
    #: :meth:`content_hash`, so experiment caches never alias engines.
    engine: str = "reference"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Cross-component consistency checks.

        Each component dataclass already rejects nonsense values in
        isolation (non-power-of-two geometries, zero widths, negative
        latencies); this catches combinations that are individually
        legal but describe a machine that cannot exist — the class of
        mistake a sweep generator makes when it scales one parameter
        and forgets its neighbours.  Raises
        :class:`~repro.common.errors.ConfigError` naming the config.
        """
        from repro.common.errors import ConfigError

        def reject(message: str) -> None:
            raise ConfigError(f"{self.name}: {message}")

        if self.engine not in ENGINE_CHOICES:
            reject(
                f"unknown engine {self.engine!r} "
                f"(choices: {', '.join(ENGINE_CHOICES)})"
            )
        for l1 in (self.l1i, self.l1d):
            if self.l2.line_bytes % l1.line_bytes != 0:
                reject(
                    f"L2 line ({self.l2.line_bytes} B) must be a multiple of "
                    f"{l1.name} line ({l1.line_bytes} B): refills would tear lines"
                )
            if self.l2.size_bytes < l1.size_bytes:
                reject(
                    f"L2 ({self.l2.size_bytes} B) smaller than {l1.name} "
                    f"({l1.size_bytes} B): inclusion is impossible"
                )
            if self.l2.hit_latency < l1.hit_latency:
                reject(
                    f"L2 hit ({self.l2.hit_latency} cy) faster than {l1.name} "
                    f"hit ({l1.hit_latency} cy): hierarchy is inverted"
                )
        if self.memory.latency <= self.l2.hit_latency:
            reject(
                f"memory latency ({self.memory.latency} cy) must exceed the "
                f"L2 hit latency ({self.l2.hit_latency} cy)"
            )
        if self.frontend.fetch_width < self.core.issue_width:
            reject(
                f"fetch width ({self.frontend.fetch_width}) below issue width "
                f"({self.core.issue_width}): the front-end can never feed the core"
            )
        if self.core.commit_width > self.core.window_size:
            reject(
                f"commit width ({self.core.commit_width}) exceeds the "
                f"instruction window ({self.core.window_size})"
            )

    def derived(self, name: str, **changes) -> "MachineConfig":
        """Copy with the given fields replaced and a new name."""
        return replace(self, name=name, **changes)

    def content_hash(self) -> str:
        """Digest of every parameter (not just the display name).

        Experiment caches key on this, so two configurations that share
        a ``name`` but differ in any field never alias.
        """
        from repro.common.hashing import content_hash

        return content_hash(self)

    def table1(self) -> str:
        """Render the configuration the way Table 1 itemises it."""
        core = self.core
        rows = [
            ("Instruction set architecture", "SPARC-V9"),
            ("Clock rate", "1.3 GHz"),
            ("Level 1 cache (I/D)", f"{self.l1i.ways}-way, {self.l1i.size_bytes // 1024} KB"),
            (
                "Level-2 cache",
                f"{self.l2.ways}-way {self.l2.size_bytes // (1024 * 1024)} MB"
                f" ({self.l2.name})",
            ),
            ("Execution control method", "Out-of-order superscalar"),
            ("Issue number", f"{core.issue_width}-way"),
            ("Instruction window", f"{core.window_size} instructions"),
            ("Instruction fetch width", f"{self.frontend.fetch_group_bytes} bytes"),
            ("Branch history table", f"{self.bht.ways}-way, {self.bht.entries // 1024}K-entry"),
            (
                "Execution unit",
                f"Fixed-point: {core.int_units}  Floating-point: {core.fp_units}"
                f" (Multiply-add)  Address generator: {core.eag_units}",
            ),
            (
                "Reservation station",
                f"RSE: {core.rse_entries * core.int_units}"
                f"({core.rse_entries}/{core.rse_entries}) for fixed-point  "
                f"RSF: {core.rsf_entries * core.fp_units}"
                f"({core.rsf_entries}/{core.rsf_entries}) for floating-point  "
                f"RSA: {core.rsa_entries}  RSBR: {core.rsbr_entries}",
            ),
            (
                "Reorder buffer",
                f"Fixed-point: {core.int_rename}  Floating-point: {core.fp_rename}",
            ),
            ("Load/Store queue", f"{core.load_queue}/{core.store_queue} entries"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def base_config() -> MachineConfig:
    """The production SPARC64 V (Table 1)."""
    return MachineConfig()


def issue_2way(base: MachineConfig = None) -> MachineConfig:
    """Fig. 8 alternative: 2-way issue (and commit) width."""
    base = base or base_config()
    return base.derived(
        "issue-2way", core=base.core.derived(issue_width=2, commit_width=2)
    )


def bht_4k_2w_1t(base: MachineConfig = None) -> MachineConfig:
    """Fig. 9/10 alternative: 4K-entry 2-way 1-cycle-access BHT."""
    base = base or base_config()
    return base.derived("bht-4k-2w.1t", bht=BHT_4K_2W_1T)


def l1_32k_1w_3c(base: MachineConfig = None) -> MachineConfig:
    """Fig. 11–13 alternative: 32 KB direct-mapped 3-cycle L1 caches."""
    base = base or base_config()
    return base.derived(
        "l1-32k-1w.3c",
        l1i=base.l1i.scaled(name="L1I-32k", size_bytes=32 * 1024, ways=1, hit_latency=3),
        l1d=base.l1d.scaled(name="L1D-32k", size_bytes=32 * 1024, ways=1, hit_latency=3),
    )


def _off_chip_bus(base: MachineConfig) -> BusParams:
    """Pin-limited off-chip L1<->L2 interface (§4.3.4)."""
    on_chip = base.l1_l2_bus
    return BusParams(
        "l1-l2-offchip",
        latency=on_chip.latency + OFF_CHIP_EXTRA_CYCLES,
        bytes_per_cycle=max(1, on_chip.bytes_per_cycle // 2),
    )


def l2_off_8m_2w(base: MachineConfig = None) -> MachineConfig:
    """Fig. 14/15 alternative: off-chip 8 MB 2-way L2."""
    base = base or base_config()
    return base.derived(
        "l2-off.8m-2w",
        l2=base.l2.scaled(
            name="L2-off.8m-2w", size_bytes=8 * 1024 * 1024, ways=2
        ),
        l1_l2_bus=_off_chip_bus(base),
    )


def l2_off_8m_1w(base: MachineConfig = None) -> MachineConfig:
    """Fig. 14/15 alternative: off-chip 8 MB direct-mapped L2."""
    base = base or base_config()
    return base.derived(
        "l2-off.8m-1w",
        l2=base.l2.scaled(
            name="L2-off.8m-1w", size_bytes=8 * 1024 * 1024, ways=1
        ),
        l1_l2_bus=_off_chip_bus(base),
    )


def prefetch_off(base: MachineConfig = None) -> MachineConfig:
    """Fig. 16/17 alternative: hardware prefetch disabled."""
    base = base or base_config()
    return base.derived(
        "no-prefetch", prefetch=PrefetchParams(enabled=False)
    )


def one_rs(base: MachineConfig = None) -> MachineConfig:
    """Fig. 18 alternative: single RS per unit pair, two dispatches/cycle."""
    base = base or base_config()
    return base.derived(
        "1RS", core=base.core.derived(rs_organization=RsOrganization.ONE_RS)
    )


def named_configs() -> "Dict[str, Callable[[], MachineConfig]]":
    """The CLI/service registry: short name -> configuration factory.

    Job specs in :mod:`repro.service` reference configurations by these
    names (JSON-serialisable, stable across hosts); the factories are
    evaluated at execution time so the resulting content hashes — not
    the names — are what the result cache and dedup keys see.
    """
    return {
        "base": base_config,
        "issue-2way": issue_2way,
        "bht-4k": bht_4k_2w_1t,
        "l1-32k": l1_32k_1w_3c,
        "l2-off-8m-2w": l2_off_8m_2w,
        "l2-off-8m-1w": l2_off_8m_1w,
        "no-prefetch": prefetch_off,
        "1rs": one_rs,
    }
