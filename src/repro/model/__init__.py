"""The assembled performance model.

This package corresponds to the paper's "software performance model"
(§2.1): the detailed processor model plus the equally detailed memory
system model, assembled from :mod:`repro.core`, :mod:`repro.frontend`
and :mod:`repro.memory`, configured by a :class:`MachineConfig` whose
defaults reproduce Table 1.
"""

from repro.model.config import (
    MachineConfig,
    base_config,
    bht_4k_2w_1t,
    issue_2way,
    l1_32k_1w_3c,
    l2_off_8m_1w,
    l2_off_8m_2w,
    one_rs,
    prefetch_off,
)
from repro.model.stats import SimResult
from repro.model.simulator import PerformanceModel
from repro.model.perfect import StallBreakdown, stall_breakdown

__all__ = [
    "MachineConfig",
    "base_config",
    "issue_2way",
    "bht_4k_2w_1t",
    "l1_32k_1w_3c",
    "l2_off_8m_2w",
    "l2_off_8m_1w",
    "prefetch_off",
    "one_rs",
    "PerformanceModel",
    "SimResult",
    "StallBreakdown",
    "stall_breakdown",
]
