"""Campaign-service throughput and recovery-latency guard.

Drives a small campaign through :class:`repro.service.CampaignService`
three ways and records the numbers in ``BENCH_service.json``:

1. **throughput** — jobs/s over a distinct (config, workload) matrix on
   a cold store (every job simulates);
2. **dedup** — the same matrix submitted twice over, measuring the
   single-flight hit rate (half the submissions must never simulate);
3. **recovery** — a worker killed mid-campaign (``worker-crash``
   fault), measuring seconds from the failure to the job's completed
   retry via the service's recovery-latency tracker.

A PR that drags scheduler overhead into the dispatch path, breaks the
single-flight key, or slows crash recovery shows up as a regression
here.
"""

import json
import pathlib

import conftest

from repro.analysis.policy import RunPolicy
from repro.common import faults
from repro.service import CampaignService

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_service.json"

#: Small points: this benchmark measures the service, not the simulator.
WARM = int(4_000 * conftest.SCALE)
TIMED = int(1_500 * conftest.SCALE)

WORKLOADS = ("SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000", "TPC-C")
CONFIGS = ("base", "issue-2way")


def _fresh_service(tmp_path, name, **kwargs) -> CampaignService:
    kwargs.setdefault("jobs", max(conftest.JOBS, 2))
    kwargs.setdefault(
        "policy", RunPolicy(retries=2, backoff_base=0.01, backoff_max=0.05)
    )
    return CampaignService(
        tmp_path / f"{name}.jsonl", cache_dir=str(tmp_path / name), **kwargs
    )


def test_service_throughput_dedup_and_recovery(benchmark, tmp_path):
    faults.install_spec(None)
    results = {}

    def campaign():
        # Leg 1: cold matrix, every job simulates.
        service = _fresh_service(tmp_path, "throughput")
        import time

        started = time.perf_counter()
        for workload in WORKLOADS:
            for config in CONFIGS:
                service.submit_point(
                    workload, config=config, warm=WARM, timed=TIMED
                )
        service.run()
        elapsed = time.perf_counter() - started
        assert service.queue.drained()
        results["throughput"] = {
            "jobs": service.stats.dispatched,
            "seconds": elapsed,
            "jobs_per_second": service.stats.dispatched / elapsed,
        }
        service.close()

        # Leg 2: same matrix submitted twice; dedup + store hits mean
        # zero additional simulations.
        service = _fresh_service(tmp_path, "throughput")
        for _round in range(2):
            for workload in WORKLOADS:
                for config in CONFIGS:
                    service.submit_point(
                        workload, config=config, warm=WARM, timed=TIMED
                    )
        service.run()
        stats = service.queue.stats
        results["dedup"] = {
            "submitted": stats.submitted,
            "deduped": stats.deduped,
            "simulated": service.stats.dispatched,
            "dedup_hit_rate": (stats.deduped + service.stats.cache_hits)
            / stats.submitted,
        }
        assert service.stats.dispatched == 0  # everything came from dedup/cache
        service.close()

        # Leg 3: kill the first worker; measure failure-to-recovery.
        faults.install_spec("worker-crash,times=1")
        try:
            service = _fresh_service(tmp_path, "recovery")
            service.submit_point("SPECint95", warm=WARM, timed=TIMED)
            service.run()
            assert service.queue.drained()
            assert service.queue.stats.failures >= 1
            assert service.stats.recovery_seconds
            results["recovery"] = {
                "worker_kills": 1,
                "pool_restarts": service.stats.pool_restarts,
                "recovery_seconds": round(
                    max(service.stats.recovery_seconds), 3
                ),
            }
            service.close()
        finally:
            faults.install_spec(None)
            faults.reset()

    benchmark.pedantic(campaign, rounds=1, iterations=1)

    payload = {
        "scale": conftest.SCALE,
        "warm": WARM,
        "timed": TIMED,
        "matrix": f"{len(WORKLOADS)} workloads x {len(CONFIGS)} configs",
        "jobs_per_second": round(results["throughput"]["jobs_per_second"], 3),
        "campaign_seconds": round(results["throughput"]["seconds"], 2),
        "dedup_hit_rate": round(results["dedup"]["dedup_hit_rate"], 3),
        "resubmission_simulations": results["dedup"]["simulated"],
        "recovery_seconds_after_worker_kill": results["recovery"][
            "recovery_seconds"
        ],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
