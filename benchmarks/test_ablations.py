"""Ablations of §3's design techniques (DESIGN.md §5).

These are not paper figures; they quantify the design choices the paper
motivates qualitatively: speculative dispatch + data forwarding (§3.1),
dual operand access and banking (§3.2), and non-blocking caches (§3.2).
"""

import conftest
from conftest import run_once

import pytest

from repro.analysis.workloads import tpcc_workload, workload_by_name
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel


@pytest.fixture(scope="module")
def workload():
    return workload_by_name(
        "SPECint95",
        warm=max(20_000, int(60_000 * conftest.SCALE)),
        timed=max(8_000, int(15_000 * conftest.SCALE)),
    )


@pytest.fixture(scope="module")
def tpcc():
    return tpcc_workload(
        warm=max(20_000, int(60_000 * conftest.SCALE)),
        timed=max(8_000, int(15_000 * conftest.SCALE)),
    )


def run_config(config, workload):
    return PerformanceModel(config).run(
        workload.trace(),
        warmup_fraction=workload.warmup_fraction,
        regions=workload.regions(),
    )


def test_ablation_speculative_dispatch(benchmark, workload):
    """§3.1: speculative dispatch avoids the deep-pipeline bubble cost."""
    base = base_config()
    ablated = base.derived(
        "no-speculative-dispatch",
        core=base.core.derived(speculative_dispatch=False),
    )
    with_spec = run_config(base, workload)
    without = run_once(benchmark, run_config, ablated, workload)
    print(
        f"\nSpeculative dispatch: IPC {with_spec.ipc:.3f} with, "
        f"{without.ipc:.3f} without ({with_spec.ipc / without.ipc - 1:+.1%})"
    )
    assert with_spec.ipc >= without.ipc


def test_ablation_data_forwarding(benchmark, workload):
    """§3.1: forwarding makes results usable the next cycle."""
    base = base_config()
    ablated = base.derived(
        "no-forwarding", core=base.core.derived(data_forwarding=False)
    )
    with_fwd = run_config(base, workload)
    without = run_once(benchmark, run_config, ablated, workload)
    print(
        f"\nData forwarding: IPC {with_fwd.ipc:.3f} with, "
        f"{without.ipc:.3f} without ({with_fwd.ipc / without.ipc - 1:+.1%})"
    )
    assert with_fwd.ipc > without.ipc


def test_ablation_dual_operand_access(benchmark, tpcc):
    """§3.2: two L1D requests/cycle vs one, on the OLTP workload."""
    base = base_config()
    ablated = base.derived(
        "single-port", core=base.core.derived(l1d_ports=1)
    )
    dual = run_config(base, tpcc)
    single = run_once(benchmark, run_config, ablated, tpcc)
    print(
        f"\nDual operand access: IPC {dual.ipc:.3f} dual, "
        f"{single.ipc:.3f} single ({dual.ipc / single.ipc - 1:+.1%})"
    )
    assert dual.ipc >= single.ipc


def test_ablation_bank_conflicts(benchmark, tpcc):
    """§3.2: the 8 × 4 B banking costs some retries vs an ideal array."""
    base = base_config()
    ideal = base.derived(
        "unbanked", l1d=base.l1d.scaled(banks=1)
    )
    banked = run_config(base, tpcc)
    unbanked = run_once(benchmark, run_config, ideal, tpcc)
    print(
        f"\nL1 banking: IPC {banked.ipc:.3f} banked (conflicts="
        f"{banked.core.bank_conflicts}), {unbanked.ipc:.3f} ideal"
    )
    assert unbanked.ipc >= banked.ipc
    assert banked.core.bank_conflicts >= 0


def test_ablation_blocking_cache(benchmark, tpcc):
    """§3.2/3.3: non-blocking caches (many MSHRs) vs nearly blocking."""
    base = base_config()
    blocking = base.derived(
        "blocking",
        l1d=base.l1d.scaled(mshr_count=1),
        l2=base.l2.scaled(mshr_count=1),
    )
    non_blocking = run_config(base, tpcc)
    nearly_blocking = run_once(benchmark, run_config, blocking, tpcc)
    print(
        f"\nNon-blocking caches: IPC {non_blocking.ipc:.3f} vs "
        f"{nearly_blocking.ipc:.3f} with single MSHRs"
    )
    assert non_blocking.ipc >= nearly_blocking.ipc
