"""§2.1: performance-model simulation speed.

The paper's C model ran a multi-user interactive (TPC-C) trace at
7.8 K instructions/second on a 1 GHz Pentium III.  This benchmark
measures the Python model's speed on the same kind of workload —
documenting the cost of the reproduction substrate — and guards the
observability layer: throughput with event tracing off vs on is
recorded in ``BENCH_observability.json`` so a PR that slows the
default (untraced) path shows up as a number, not a feeling.
"""

import json
import pathlib

import conftest

from repro.analysis.workloads import tpcc_workload
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.observe import PipelineTracer

PAPER_MODEL_SPEED_IPS = 7_800

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_observability.json"


def test_model_simulation_speed(benchmark):
    workload = tpcc_workload(
        warm=max(10_000, int(30_000 * conftest.SCALE)),
        timed=max(5_000, int(10_000 * conftest.SCALE)),
    )
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())

    result_holder = {}

    def run():
        result_holder["result"] = model.run(
            trace, warmup_fraction=workload.warmup_fraction, regions=regions
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = result_holder["result"]
    print(
        f"\nModel speed: {result.sim_speed:,.0f} trace-instructions/s "
        f"(paper's C model: {PAPER_MODEL_SPEED_IPS:,} on a 1 GHz P-III)"
    )
    assert result.sim_speed > 1_000  # sanity floor


def test_observability_overhead(benchmark):
    """Throughput with event tracing off vs on, recorded to JSON.

    The CPI-stack accountant is always on (it is part of the model's
    output contract), so the "disabled" leg here is the default
    production path: no tracer attached, every ``tracer.emit`` guarded
    out.  The "enabled" leg attaches a ring-mode tracer, the cheapest
    always-recording configuration.  Both numbers land in
    ``BENCH_observability.json`` for cross-commit comparison.
    """
    workload = tpcc_workload(
        warm=max(8_000, int(20_000 * conftest.SCALE)),
        timed=max(4_000, int(8_000 * conftest.SCALE)),
    )
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())
    kwargs = dict(warmup_fraction=workload.warmup_fraction, regions=regions)

    speeds = {}

    def run_both():
        # Interleaved legs share any OS-level warmup/jitter evenly.
        plain = model.run(trace, **kwargs)
        traced = model.run(trace, tracer=PipelineTracer(capacity=4_096), **kwargs)
        speeds["disabled"] = plain.sim_speed
        speeds["enabled"] = traced.sim_speed
        speeds["instructions"] = plain.instructions
        assert plain.as_dict(include_speed=False) == traced.as_dict(
            include_speed=False
        )  # tracing must never change the numbers

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    overhead = 1.0 - speeds["enabled"] / speeds["disabled"]
    payload = {
        "workload": workload.name,
        "instructions_timed": speeds["instructions"],
        "throughput_ips": {
            "tracing_disabled": round(speeds["disabled"], 1),
            "tracing_enabled": round(speeds["enabled"], 1),
        },
        "tracing_overhead_fraction": round(overhead, 4),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nObservability overhead: tracing off {speeds['disabled']:,.0f} ips, "
        f"on {speeds['enabled']:,.0f} ips ({overhead:+.1%}); "
        f"recorded in {BENCH_JSON.name}"
    )
    # Ring-mode tracing is per-event dict-free appends; anything past
    # 60% means emit moved onto a hot path unconditionally.
    assert overhead < 0.60
