"""§2.1: performance-model simulation speed.

The paper's C model ran a multi-user interactive (TPC-C) trace at
7.8 K instructions/second on a 1 GHz Pentium III.  This benchmark
measures the Python model's speed on the same kind of workload —
documenting the cost of the reproduction substrate — and guards the
observability layer: throughput with event tracing off vs on is
recorded in ``BENCH_observability.json`` so a PR that slows the
default (untraced) path shows up as a number, not a feeling.
"""

import json
import os
import pathlib

import conftest

from repro.analysis.workloads import standard_workloads, tpcc_workload
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.observe import PipelineTracer

PAPER_MODEL_SPEED_IPS = 7_800

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_observability.json"

CORE_SPEED_JSON = pathlib.Path(__file__).parent / "BENCH_core_speed.json"

#: Interleaved repetitions per engine; the best of each is recorded so
#: one OS scheduling hiccup cannot sink a leg.
SPEED_REPS = 3

#: Minimum fast/reference speedup on TPC-C.  The CI speed-smoke job
#: leaves the default; set ``REPRO_SPEED_FLOOR=0`` to record numbers
#: without gating (e.g. on a heavily loaded workstation).
SPEED_FLOOR = float(os.environ.get("REPRO_SPEED_FLOOR", "2.0"))


def test_core_engine_speed():
    """Reference vs fast engine IPS per profile -> BENCH_core_speed.json.

    Both engines run the same pre-generated traces; repetitions are
    interleaved (ref, fast, ref, fast, ...) so slow-machine drift hits
    both legs evenly, and the best repetition per engine is recorded —
    the usual benchmarking convention for throughput numbers.  The
    TPC-C row also gates: the fast engine must hold the CI floor.
    """
    timed = max(5_000, int(20_000 * conftest.SCALE))
    warm = max(10_000, int(30_000 * conftest.SCALE))
    reference = PerformanceModel(base_config(), engine="reference")
    fast = PerformanceModel(base_config(), engine="fast")

    profiles = {}
    for workload in standard_workloads(warm=warm, timed=timed):
        trace = workload.trace()
        regions = workload.regions()
        kwargs = dict(warmup_fraction=workload.warmup_fraction, regions=regions)
        best = {"reference": 0.0, "fast": 0.0}
        for _ in range(SPEED_REPS):
            for name, model in (("reference", reference), ("fast", fast)):
                result = model.run(trace, **kwargs)
                if result.sim_speed > best[name]:
                    best[name] = result.sim_speed
        profiles[workload.name] = {
            "reference_ips": round(best["reference"], 1),
            "fast_ips": round(best["fast"], 1),
            "fast_vs_reference": round(best["fast"] / best["reference"], 3),
            "reference_vs_paper": round(
                best["reference"] / PAPER_MODEL_SPEED_IPS, 3
            ),
            "fast_vs_paper": round(best["fast"] / PAPER_MODEL_SPEED_IPS, 3),
        }
        print(
            f"{workload.name}: reference {best['reference']:,.0f} ips, "
            f"fast {best['fast']:,.0f} ips "
            f"({profiles[workload.name]['fast_vs_reference']:.2f}x)"
        )

    payload = {
        "paper_model_ips": PAPER_MODEL_SPEED_IPS,
        "reps_per_backend": SPEED_REPS,
        "timed_instructions": timed,
        "ci_floor_tpcc_speedup": SPEED_FLOOR,
        "profiles": profiles,
    }
    CORE_SPEED_JSON.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"recorded in {CORE_SPEED_JSON.name}")

    tpcc_speedup = profiles["TPC-C"]["fast_vs_reference"]
    assert tpcc_speedup >= SPEED_FLOOR, (
        f"fast engine {tpcc_speedup:.2f}x reference on TPC-C, "
        f"floor {SPEED_FLOOR}x"
    )


def test_model_simulation_speed(benchmark):
    workload = tpcc_workload(
        warm=max(10_000, int(30_000 * conftest.SCALE)),
        timed=max(5_000, int(10_000 * conftest.SCALE)),
    )
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())

    result_holder = {}

    def run():
        result_holder["result"] = model.run(
            trace, warmup_fraction=workload.warmup_fraction, regions=regions
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = result_holder["result"]
    print(
        f"\nModel speed: {result.sim_speed:,.0f} trace-instructions/s "
        f"(paper's C model: {PAPER_MODEL_SPEED_IPS:,} on a 1 GHz P-III)"
    )
    assert result.sim_speed > 1_000  # sanity floor


def test_observability_overhead(benchmark):
    """Throughput with event tracing off vs on, recorded to JSON.

    The CPI-stack accountant is always on (it is part of the model's
    output contract), so the "disabled" leg here is the default
    production path: no tracer attached, every ``tracer.emit`` guarded
    out.  The "enabled" leg attaches a ring-mode tracer, the cheapest
    always-recording configuration.  Both numbers land in
    ``BENCH_observability.json`` for cross-commit comparison.
    """
    workload = tpcc_workload(
        warm=max(8_000, int(20_000 * conftest.SCALE)),
        timed=max(4_000, int(8_000 * conftest.SCALE)),
    )
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())
    kwargs = dict(warmup_fraction=workload.warmup_fraction, regions=regions)

    speeds = {}

    def run_both():
        # Interleaved legs share any OS-level warmup/jitter evenly.
        plain = model.run(trace, **kwargs)
        traced = model.run(trace, tracer=PipelineTracer(capacity=4_096), **kwargs)
        speeds["disabled"] = plain.sim_speed
        speeds["enabled"] = traced.sim_speed
        speeds["instructions"] = plain.instructions
        assert plain.as_dict(include_speed=False) == traced.as_dict(
            include_speed=False
        )  # tracing must never change the numbers

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    overhead = 1.0 - speeds["enabled"] / speeds["disabled"]
    payload = {
        "workload": workload.name,
        "instructions_timed": speeds["instructions"],
        "throughput_ips": {
            "tracing_disabled": round(speeds["disabled"], 1),
            "tracing_enabled": round(speeds["enabled"], 1),
        },
        "tracing_overhead_fraction": round(overhead, 4),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nObservability overhead: tracing off {speeds['disabled']:,.0f} ips, "
        f"on {speeds['enabled']:,.0f} ips ({overhead:+.1%}); "
        f"recorded in {BENCH_JSON.name}"
    )
    # Ring-mode tracing is per-event dict-free appends; anything past
    # 60% means emit moved onto a hot path unconditionally.
    assert overhead < 0.60
