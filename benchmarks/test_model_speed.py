"""§2.1: performance-model simulation speed.

The paper's C model ran a multi-user interactive (TPC-C) trace at
7.8 K instructions/second on a 1 GHz Pentium III.  This benchmark
measures the Python model's speed on the same kind of workload —
documenting the cost of the reproduction substrate.
"""

import conftest

from repro.analysis.workloads import tpcc_workload
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel

PAPER_MODEL_SPEED_IPS = 7_800


def test_model_simulation_speed(benchmark):
    workload = tpcc_workload(
        warm=max(10_000, int(30_000 * conftest.SCALE)),
        timed=max(5_000, int(10_000 * conftest.SCALE)),
    )
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())

    result_holder = {}

    def run():
        result_holder["result"] = model.run(
            trace, warmup_fraction=workload.warmup_fraction, regions=regions
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    result = result_holder["result"]
    print(
        f"\nModel speed: {result.sim_speed:,.0f} trace-instructions/s "
        f"(paper's C model: {PAPER_MODEL_SPEED_IPS:,} on a 1 GHz P-III)"
    )
    assert result.sim_speed > 1_000  # sanity floor
