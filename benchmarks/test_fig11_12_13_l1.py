"""Figures 11–13: level-one cache — latency versus volume.

Paper shape: for TPC-C, the 32 KB direct-mapped L1 roughly doubles the
instruction miss ratio (+99%) and raises the operand miss ratio (+64%)
versus the 128 KB 2-way design; SPEC with its small footprints is far
less sensitive.
"""

from conftest import run_once

from repro.analysis.figures import fig11_12_13_l1


def test_fig11_12_13_l1(benchmark, workloads, runner):
    result = run_once(benchmark, fig11_12_13_l1, workloads, runner)
    print("\nFigures 11-13. L1 cache --- latency vs. volume.")
    print(result.format_table())

    # Figure 12: TPC-C I-miss grows substantially with the small L1.
    tpcc_imiss_128 = result.imiss_128k["TPC-C"]
    tpcc_imiss_32 = result.imiss_32k["TPC-C"]
    assert tpcc_imiss_32 > tpcc_imiss_128 * 1.3, (
        f"TPC-C I-miss: 128k={tpcc_imiss_128:.4f}, 32k={tpcc_imiss_32:.4f}"
    )

    # Figure 13: TPC-C D-miss grows too.
    tpcc_dmiss_128 = result.dmiss_128k["TPC-C"]
    tpcc_dmiss_32 = result.dmiss_32k["TPC-C"]
    assert tpcc_dmiss_32 > tpcc_dmiss_128 * 1.2, (
        f"TPC-C D-miss: 128k={tpcc_dmiss_128:.4f}, 32k={tpcc_dmiss_32:.4f}"
    )

    # TPC-C is more I-side sensitive than SPECint (absolute increase).
    int_delta = result.imiss_32k["SPECint95"] - result.imiss_128k["SPECint95"]
    tpcc_delta = tpcc_imiss_32 - tpcc_imiss_128
    assert tpcc_delta > int_delta
