"""Table 1: the microarchitecture parameter inventory.

Asserts the base model matches every row of Table 1 and prints the
rendered table.
"""

from conftest import run_once

from repro.model.config import base_config


def test_table1_microarchitecture(benchmark):
    config = run_once(benchmark, base_config)
    core = config.core
    # Table 1 rows.
    assert core.issue_width == 4
    assert core.window_size == 64
    assert config.frontend.fetch_group_bytes == 32
    assert config.bht.entries == 16 * 1024 and config.bht.ways == 4
    assert config.l1i.size_bytes == 128 * 1024 and config.l1i.ways == 2
    assert config.l1d.size_bytes == 128 * 1024 and config.l1d.ways == 2
    assert config.l2.size_bytes == 2 * 1024 * 1024 and config.l2.ways == 4
    assert core.int_units == 2 and core.fp_units == 2 and core.eag_units == 2
    assert core.rse_entries * core.int_units == 16
    assert core.rsf_entries * core.fp_units == 16
    assert core.rsa_entries == 10 and core.rsbr_entries == 10
    assert core.int_rename == 32 and core.fp_rename == 32
    assert core.load_queue == 16 and core.store_queue == 10
    print("\nTable 1. Microarchitecture.")
    print(config.table1())
