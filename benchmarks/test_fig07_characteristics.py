"""Figure 7: benchmark characteristics (execution-time breakdown).

Paper shape: SPECint95 ~30% branch stalls; SPECfp95 ~74% core time;
TPC-C ~35% sx (L2-miss) stalls.
"""

from conftest import run_once

from repro.analysis.figures import fig07_characteristics


def test_fig07_breakdown(benchmark, workloads):
    result = run_once(benchmark, fig07_characteristics, workloads)
    print("\nFigure 7. Benchmark characteristics.")
    print(result.format_table())

    by_name = {item.trace_name: item for item in result.breakdowns}
    for item in result.breakdowns:
        item.validate()  # fractions sum to 1

    # Shape assertions (generous bands around the paper's statements).
    assert by_name["SPECint95"].branch > 0.15, "SPECint95 must be branch-heavy"
    assert by_name["SPECint95"].sx < 0.10, "SPECint95 has high cache-hit ratios"
    # Paper: 74% core for SPECfp95.  The synthetic FP workload carries a
    # larger memory component (see EXPERIMENTS.md "known gaps"), so the
    # assertion checks core-heaviness rather than the paper's exact share.
    assert by_name["SPECfp95"].core > 0.30, "SPECfp95 is core/compute heavy"
    assert by_name["SPECfp95"].core > by_name["TPC-C"].core
    assert by_name["SPECfp95"].branch < 0.05, "SPECfp95 branches are predictable"
    assert by_name["TPC-C"].sx > 0.12, "TPC-C must stall substantially on L2 misses"
    assert (
        by_name["TPC-C"].sx > by_name["SPECint95"].sx
    ), "the L2 is the key to TPC-C, not SPECint"
