"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
the reproduced rows/series (run with ``-s`` to see them).  Workload sizes
are chosen so the full suite completes in minutes on a laptop; set
``REPRO_BENCH_SCALE`` (default 1.0) to scale the trace lengths.
"""

import os

import pytest

from repro.analysis.runner import ParallelRunner
from repro.analysis.workloads import standard_workloads

#: Scale factor for trace lengths (REPRO_BENCH_SCALE env var).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Worker processes for independent runs (REPRO_BENCH_JOBS env var).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Persistent result cache directory; empty/unset disables caching so
#: benchmarks measure real simulation time by default.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", "")

#: Untimed warm-up prefix per workload.
WARM = int(100_000 * SCALE)
#: Timed window per workload.
TIMED = int(25_000 * SCALE)

#: SMP configuration for the TPC-C (16P) runs of Figures 14/15.
SMP_CPUS = int(os.environ.get("REPRO_BENCH_SMP_CPUS", "16"))
SMP_WARM = int(20_000 * SCALE)
SMP_TIMED = int(6_000 * SCALE)


@pytest.fixture(scope="session")
def workloads():
    """The five standard uniprocessor workloads at benchmark scale."""
    return standard_workloads(warm=WARM, timed=TIMED)


@pytest.fixture(scope="session")
def runner():
    """Session-wide result cache shared by every figure.

    Set ``REPRO_BENCH_JOBS=N`` to fan independent runs over N worker
    processes and ``REPRO_BENCH_CACHE=dir`` to persist results across
    benchmark sessions.
    """
    return ParallelRunner(
        jobs=JOBS,
        verbose=True,
        cache_dir=CACHE_DIR or None,
        use_cache=bool(CACHE_DIR),
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-figure reproduction exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
