"""Figure 3, loop (2): trace-driven model vs logic-simulator cross-check.

Generates performance test programs from traces with the Reverse Tracer
and verifies that the execution-driven path (logic simulator) and the
trace-driven path (performance model) agree cycle-for-cycle.
"""

import conftest

from repro.trace.synth import generate_trace, standard_profiles
from repro.verify import ReverseTracer, cross_check


def test_verification_cross_check(benchmark):
    length = max(1_000, int(3_000 * conftest.SCALE))
    profiles = standard_profiles()
    tracer = ReverseTracer()

    def run():
        results = {}
        for name in ("SPECint95", "SPECfp95", "TPC-C"):
            trace = generate_trace(profiles[name], length, seed=5)
            program, fidelity = tracer.generate(trace)
            outcome = cross_check(program, max_steps=4 * length)
            results[name] = (outcome, fidelity)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nVerification loop (2): model vs logic-simulator cross-check.")
    for name, (outcome, fidelity) in results.items():
        print(
            f"  {name:10s} cycles={outcome.cycles:7d} "
            f"insts={outcome.instructions:6d} "
            f"branch-exact={fidelity.branch_exact_fraction:.1%}"
        )
        assert outcome.cycles > 0
        assert fidelity.branch_exact_fraction > 0.6
