"""Figure 8: issue width — 4-way versus 2-way.

Paper shape: every workload benefits from 4-way issue; SPECint95 and
SPECint2000 improve the most (their cache-hit ratios are high, so the
core width is the limiter).
"""

from conftest import run_once

from repro.analysis.figures import fig08_issue_width


def test_fig08_issue_width(benchmark, workloads, runner):
    result = run_once(benchmark, fig08_issue_width, workloads, runner)
    print("\nFigure 8. Issue width --- 4-way vs. 2-way (IPC ratio).")
    print(result.format_table())

    ratios = result.ratios
    # 4-way is never slower.
    assert all(ratio >= 0.99 for ratio in ratios.values())
    # SPEC int benefits more than everything else (paper's key observation).
    int_best = max(ratios["SPECint95"], ratios["SPECint2000"])
    assert int_best >= ratios["SPECfp95"]
    assert int_best >= ratios["SPECfp2000"]
    assert int_best >= ratios["TPC-C"]
    # And the gain is material, not noise.
    assert int_best > 1.03
