"""Figure 18: reservation-station organisation — 1RS vs 2RS.

Paper shape: the flexible single station ("1RS", two dispatches/cycle)
is slightly faster; the production "2RS" shape gives up a little IPC for
dispatch-stage simplicity.  The differences are small on every workload.
"""

from conftest import run_once

from repro.analysis.figures import fig18_reservation


def test_fig18_reservation_stations(benchmark, workloads, runner):
    result = run_once(benchmark, fig18_reservation, workloads, runner)
    print("\nFigure 18. Reservation station --- 1RS vs. 2RS (IPC of 2RS / 1RS).")
    print(result.format_table())

    for name, ratio in result.ratios.items():
        # 2RS never *beats* 1RS by a meaningful margin...
        assert ratio <= 1.02, f"{name}: 2RS should not out-run 1RS"
        # ...and the loss is slight (paper: a few percent at most).
        assert ratio >= 0.90, f"{name}: 2RS loss should be small, got {ratio:.3f}"
