"""Figure 19: performance-model accuracy.

Upper graph: estimates of model versions v1..v8 on SPEC CPU2000,
normalised to v8 — decreasing as rigidity improves, except the v5 bump
from the special-instruction remodelling (v4 used a pessimistic flat
penalty).

Lower graph: model error against the "physical machine" across
verification phases — abrupt improvements as memory-system parameters
are corrected, ending below the paper's ~5% (3.9% fp / 4.2% int).
The machine here is the final model driven by different-seed traces, so
the terminal error is honest sampling error.
"""

import conftest
from conftest import run_once

from repro.verify.accuracy import accuracy_history, version_estimate_history


def test_fig19_upper_version_estimates(benchmark):
    timed = max(4_000, int(15_000 * conftest.SCALE))
    warm = max(20_000, int(60_000 * conftest.SCALE))
    history = run_once(
        benchmark, version_estimate_history, timed=timed, warm=warm
    )
    print("\nFigure 19 (upper). Estimates by model version (v8 = 1.0).")
    for workload, versions in history.items():
        print(f"  {workload}: " + "  ".join(
            f"{label}={value:.3f}" for label, value in versions.items()
        ))

    for workload, versions in history.items():
        # v1 (latency-only memory model) over-estimates performance.
        assert versions["v1"] >= versions["v8"] - 0.01
        # Monotone non-increasing v1 -> v4 (details only remove cycles).
        assert versions["v1"] >= versions["v2"] - 0.01
        assert versions["v2"] >= versions["v3"] - 0.01
        assert versions["v3"] >= versions["v4"] - 0.01
        # The v5 exception: estimates move back up when special
        # instructions get their detailed model.
        assert versions["v5"] >= versions["v4"] - 0.005, workload
        # Convergence to the final model.
        assert abs(versions["v8"] - 1.0) < 1e-9


def test_fig19_lower_accuracy_convergence():
    timed = max(4_000, int(12_000 * conftest.SCALE))
    warm = max(16_000, int(50_000 * conftest.SCALE))
    points = accuracy_history(timed=timed, warm=warm)
    print("\nFigure 19 (lower). Model error vs physical machine by phase.")
    by_workload = {}
    for point in points:
        by_workload.setdefault(point.workload, []).append(point)
        print(f"  {point.workload:12s} {point.phase:8s} error={point.error:+.3%}")

    for workload, series in by_workload.items():
        final = series[-1]
        assert final.phase == "final"
        # Paper: final accuracy within ~5%.
        assert final.abs_error < 0.08, (
            f"{workload}: final error {final.abs_error:.1%} too large"
        )
        # The final model is at least as accurate as the early phases.
        worst_early = max(point.abs_error for point in series[:-1])
        assert final.abs_error <= worst_early + 0.02
