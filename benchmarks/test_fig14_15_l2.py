"""Figures 14 & 15: L2 cache — on-chip 2 MB vs off-chip 8 MB, incl. SMP.

Paper shape: "off.8m-1w" loses 14% (TPC-C UP) and 12.4% (TPC-C 16P)
against "on.2m-4w"; "off.8m-2w" is a slight win; the bigger off-chip
caches have lower miss ratios but pay the +10 ns crossing.
"""

import conftest
from conftest import run_once

from repro.analysis.figures import fig14_15_l2
from repro.analysis.workloads import smp_workload


def test_fig14_15_l2(benchmark, workloads, runner):
    smp = smp_workload(
        conftest.SMP_CPUS, warm=conftest.SMP_WARM, timed=conftest.SMP_TIMED
    )
    result = run_once(
        benchmark,
        fig14_15_l2,
        workloads,
        runner,
        smp_cpus=conftest.SMP_CPUS,
        include_smp=True,
        smp_workload_override=smp,
    )
    print("\nFigures 14/15. L2 cache --- latency vs. volume (incl. TPC-C SMP).")
    print(result.format_table())

    tpcc = result.ipc_ratios["TPC-C"]
    # Figure 14: the direct-mapped off-chip L2 is the clear loser on TPC-C.
    assert tpcc["off.8m-1w"] < 1.0, "off.8m-1w must offer no advantage"
    assert tpcc["off.8m-1w"] <= tpcc["off.8m-2w"], "associativity matters off-chip"

    # Figure 15: the 8 MB caches miss less than the 2 MB cache on TPC-C.
    misses = result.miss_ratios["TPC-C"]
    assert misses["off.8m-2w"] <= misses["on.2m-4w"] + 1e-9

    # SMP workload present and the 1-way off-chip L2 still loses there.
    smp_name = smp_workload(conftest.SMP_CPUS).name
    assert smp_name in result.ipc_ratios
    assert result.ipc_ratios[smp_name]["off.8m-1w"] < 1.02


def test_fig14_15_smp_workload_sized():
    # SMP runs use shorter per-CPU traces; document the scaling in-run.
    workload = smp_workload(
        conftest.SMP_CPUS, warm=conftest.SMP_WARM, timed=conftest.SMP_TIMED
    )
    assert workload.total_instructions == conftest.SMP_WARM + conftest.SMP_TIMED
