"""Figures 9 & 10: branch history table — latency versus size.

Paper shape: SPEC benchmarks benefit slightly from the faster 4k-2w.1t
table and show no failure-rate difference; TPC-C's prediction-failure
rate rises substantially with the smaller table (paper: +60%, IPC −5.6%).
"""

from conftest import run_once

from repro.analysis.figures import fig09_10_bht


def test_fig09_10_bht(benchmark, workloads, runner):
    result = run_once(benchmark, fig09_10_bht, workloads, runner)
    print("\nFigures 9/10. Branch history table --- latency vs. size.")
    print(result.format_table())

    # Figure 10: SPEC sees essentially no failure-rate change.
    for name in ("SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000"):
        big = result.mispredict_16k[name]
        small = result.mispredict_4k[name]
        assert abs(small - big) <= max(0.01, big * 0.10), (
            f"{name}: SPEC should show no real BHT-size sensitivity"
        )

    # Figure 10: TPC-C's failures increase with the 4K table.
    tpcc_big = result.mispredict_16k["TPC-C"]
    tpcc_small = result.mispredict_4k["TPC-C"]
    assert tpcc_small > tpcc_big * 1.05, (
        "TPC-C must lose prediction accuracy with the 4K BHT "
        f"(16k={tpcc_big:.4f}, 4k={tpcc_small:.4f})"
    )

    # TPC-C is the most capacity-sensitive workload in the suite.
    tpcc_increase = (tpcc_small - tpcc_big) / tpcc_big
    for name in ("SPECint95", "SPECfp95", "SPECint2000", "SPECfp2000"):
        big = result.mispredict_16k[name]
        increase = (result.mispredict_4k[name] - big) / big if big else 0.0
        assert tpcc_increase >= increase - 1e-9
