"""Figures 16 & 17: hardware prefetching.

Paper shape: SPECfp gains the most (IPC improves by more than 13%); the
L2 demand miss ratio ("with-Demand") drops well below the no-prefetch
ratio ("without"); the "with" ratio including prefetch requests sits
between them (unnecessary prefetches are the with/with-Demand gap).
"""

from conftest import run_once

from repro.analysis.figures import fig16_17_prefetch


def test_fig16_17_prefetch(benchmark, workloads, runner):
    result = run_once(benchmark, fig16_17_prefetch, workloads, runner)
    print("\nFigures 16/17. Hardware prefetching impact and L2 miss.")
    print(result.format_table())

    ratios = result.ipc_ratio.ratios
    # Figure 16: prefetch never hurts, and SPECfp gains the most.
    assert all(ratio >= 0.97 for ratio in ratios.values())
    fp_best = max(ratios["SPECfp95"], ratios["SPECfp2000"])
    assert fp_best > 1.05, f"SPECfp must gain materially from prefetch ({fp_best:.3f})"
    assert fp_best >= ratios["SPECint95"]
    assert fp_best >= ratios["TPC-C"]

    # Figure 17: demand misses fall with prefetching for the FP suites.
    for name in ("SPECfp95", "SPECfp2000"):
        assert result.miss_with_demand[name] < result.miss_without[name], name
