"""Supplemental sweeps (DESIGN.md §5): the studies between the figures.

Not paper figures — continuous versions of the same axes, run at reduced
scale: L2 capacity, BHT capacity, instruction-window depth, and TPC-C
SMP scaling.
"""

import conftest
from conftest import run_once

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.analysis.sweeps import (
    bht_size_sweep,
    l2_size_sweep,
    smp_scaling_sweep,
    window_size_sweep,
)
from repro.analysis.workloads import tpcc_workload, workload_by_name


@pytest.fixture(scope="module")
def sweep_runner():
    return ExperimentRunner(verbose=True)


@pytest.fixture(scope="module")
def tpcc_small():
    return tpcc_workload(
        warm=max(20_000, int(50_000 * conftest.SCALE)),
        timed=max(6_000, int(12_000 * conftest.SCALE)),
    )


def test_sweep_l2_capacity(benchmark, sweep_runner, tpcc_small):
    result = run_once(
        benchmark, l2_size_sweep, (1, 2, 4), workload=tpcc_small,
        runner=sweep_runner,
    )
    print("\n" + result.format_table())
    misses = result.series["L2 miss ratio"]
    assert misses[-1] <= misses[0] + 1e-9  # bigger L2 never misses more


def test_sweep_bht_capacity(benchmark, sweep_runner, tpcc_small):
    result = run_once(
        benchmark, bht_size_sweep, (1024, 4096, 16384), workload=tpcc_small,
        runner=sweep_runner,
    )
    print("\n" + result.format_table())
    rates = result.series["mispredict ratio"]
    assert rates[-1] <= rates[0] + 1e-9  # monotone capacity effect


def test_sweep_window_depth(benchmark, sweep_runner):
    workload = workload_by_name(
        "SPECint95",
        warm=max(15_000, int(40_000 * conftest.SCALE)),
        timed=max(6_000, int(12_000 * conftest.SCALE)),
    )
    result = run_once(
        benchmark, window_size_sweep, (16, 32, 64), workload=workload,
        runner=sweep_runner,
    )
    print("\n" + result.format_table())
    ipcs = result.series["IPC"]
    assert ipcs[-1] >= ipcs[0] - 0.02


def test_sweep_smp_scaling(benchmark, sweep_runner):
    result = run_once(
        benchmark, smp_scaling_sweep, (1, 2, 4), runner=sweep_runner,
        warm=max(6_000, int(15_000 * conftest.SCALE)),
        timed=max(3_000, int(5_000 * conftest.SCALE)),
    )
    print("\n" + result.format_table())
    system = result.series["system IPC"]
    # Throughput grows with processors; per-CPU IPC does not increase.
    assert system[-1] > system[0]
    per_cpu = result.series["per-CPU IPC"]
    assert per_cpu[-1] <= per_cpu[0] * 1.1
