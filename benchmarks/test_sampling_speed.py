"""Sampled-simulation speedup guard.

Runs TPC-C both ways — full detailed simulation and the SMARTS-style
sampled schedule validated in ``tests/test_sampling_validation.py`` —
and records the speedup factor, the detailed-instruction reduction and
the relative IPC error in ``BENCH_sampling.json``.  A PR that erodes
the sampling speedup (e.g. by dragging detailed-mode work into the
functional-warming path) or its accuracy shows up as a number here.
"""

import json
import pathlib

import conftest

from repro.analysis.workloads import tpcc_workload
from repro.model.config import base_config
from repro.model.simulator import PerformanceModel
from repro.trace.sampling import SamplingPlan

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sampling.json"

#: The schedule validated across all profiles by the statistical suite.
PLAN = SamplingPlan(period=20800, sample_length=500, warmup=800, detail_warmup=1500)


def test_sampling_speedup_and_error(benchmark):
    workload = tpcc_workload(
        warm=0, timed=max(PLAN.period * 15, int(310_000 * conftest.SCALE))
    )
    trace = workload.trace()
    regions = workload.regions()
    model = PerformanceModel(base_config())

    results = {}

    def run_both():
        # Interleaved legs share any OS-level warmup/jitter evenly.
        results["full"] = model.run(trace, warmup_fraction=0.0, regions=regions)
        results["sampled"] = model.run_sampled(trace, PLAN, regions=regions)

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    full = results["full"]
    sampled = results["sampled"]
    # sim_speed is trace instructions per host second for both runs, so
    # the ratio is the wall-clock speedup on the same trace.
    speedup = sampled.sim_speed / full.sim_speed
    rel_error = abs(sampled.ipc - full.ipc) / full.ipc
    lo, hi = sampled.ipc_interval

    payload = {
        "workload": workload.name,
        "trace_instructions": len(trace),
        "plan": PLAN.key(),
        "windows": sampled.window_count,
        "detailed_instructions": sampled.detailed_instructions,
        "detail_reduction": round(sampled.detail_reduction, 2),
        "wall_clock_speedup": round(speedup, 2),
        "full_ipc": round(full.ipc, 4),
        "sampled_ipc": round(sampled.ipc, 4),
        "sampled_ipc_ci95": [round(lo, 4), round(hi, 4)],
        "relative_ipc_error": round(rel_error, 4),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nSampling: {sampled.detail_reduction:.1f}x fewer detailed "
        f"instructions, {speedup:.1f}x wall-clock, IPC error "
        f"{rel_error:.1%}; recorded in {BENCH_JSON.name}"
    )

    assert sampled.detail_reduction >= 10.0
    # Functional warming costs real time, so wall-clock gains trail the
    # detail reduction; below 2x the fast path has stopped being fast.
    assert speedup >= 2.0
    assert lo <= full.ipc <= hi
    assert rel_error < 0.25
